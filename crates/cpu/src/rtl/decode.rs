//! Instruction decoder generator: splits the 32-bit instruction word into its
//! fields and produces the control signals of the single-cycle datapath.

use crate::isa::fields;
use netlist::{NetId, NetlistBuilder, Word};

/// Instruction fields (pure wiring, no gates).
#[derive(Clone, Debug)]
pub struct InstrFields {
    /// Bits 31:26.
    pub opcode: Word,
    /// Bits 25:21.
    pub rs: Word,
    /// Bits 20:16.
    pub rt: Word,
    /// Bits 15:11.
    pub rd: Word,
    /// Bits 10:6.
    pub shamt: Word,
    /// Bits 5:0.
    pub funct: Word,
    /// Bits 15:0.
    pub imm16: Word,
    /// Bits 25:0.
    pub target26: Word,
}

impl InstrFields {
    /// Splits an instruction word into its fields.
    pub fn split(instruction: &[NetId]) -> Self {
        assert_eq!(instruction.len(), 32);
        InstrFields {
            opcode: instruction[26..32].to_vec(),
            rs: instruction[21..26].to_vec(),
            rt: instruction[16..21].to_vec(),
            rd: instruction[11..16].to_vec(),
            shamt: instruction[6..11].to_vec(),
            funct: instruction[0..6].to_vec(),
            imm16: instruction[0..16].to_vec(),
            target26: instruction[0..26].to_vec(),
        }
    }
}

/// The decoded control signals.
#[derive(Clone, Debug)]
pub struct Controls {
    /// R-type instruction.
    pub is_rtype: NetId,
    /// Individual instruction strobes.
    pub is_addi: NetId,
    /// `andi`
    pub is_andi: NetId,
    /// `ori`
    pub is_ori: NetId,
    /// `xori`
    pub is_xori: NetId,
    /// `lui`
    pub is_lui: NetId,
    /// `lw`
    pub is_lw: NetId,
    /// `sw`
    pub is_sw: NetId,
    /// `beq`
    pub is_beq: NetId,
    /// `bne`
    pub is_bne: NetId,
    /// `j`
    pub is_j: NetId,
    /// `jal`
    pub is_jal: NetId,
    /// `halt`
    pub is_halt: NetId,
    /// R-type function strobes (already gated with `is_rtype`).
    pub fn_add: NetId,
    /// `sub`
    pub fn_sub: NetId,
    /// `and`
    pub fn_and: NetId,
    /// `or`
    pub fn_or: NetId,
    /// `xor`
    pub fn_xor: NetId,
    /// `sltu`
    pub fn_sltu: NetId,
    /// `sll`
    pub fn_sll: NetId,
    /// `srl`
    pub fn_srl: NetId,
    /// Register-file write strobe.
    pub reg_write: NetId,
    /// Select the immediate as the second ALU operand.
    pub alu_src_imm: NetId,
    /// Zero-extend (rather than sign-extend) the immediate.
    pub imm_zero_extend: NetId,
    /// Write-back selects the load data.
    pub wb_from_mem: NetId,
    /// Write-back selects the upper immediate.
    pub wb_from_lui: NetId,
    /// Write-back selects the link address (pc+4).
    pub wb_from_link: NetId,
    /// Data-memory write strobe.
    pub mem_write: NetId,
    /// Data-memory read strobe.
    pub mem_read: NetId,
    /// Destination is the `rd` field (R-type).
    pub dest_is_rd: NetId,
    /// Destination is register 31 (`jal`).
    pub dest_is_link: NetId,
    /// Taken-control-transfer strobes.
    pub is_jump: NetId,
    /// Conditional-branch strobe (`beq` or `bne`).
    pub is_branch: NetId,
}

/// Generates the control decoder from the opcode and function fields.
///
/// All cells are tagged with the `decode` group.
pub fn generate_controls(builder: &mut NetlistBuilder, fields_in: &InstrFields) -> Controls {
    builder.push_group("decode");

    let op = &fields_in.opcode;
    let funct = &fields_in.funct;

    let is_rtype = builder.eq_const(op, fields::OP_RTYPE as u64);
    let is_addi = builder.eq_const(op, fields::OP_ADDI as u64);
    let is_andi = builder.eq_const(op, fields::OP_ANDI as u64);
    let is_ori = builder.eq_const(op, fields::OP_ORI as u64);
    let is_xori = builder.eq_const(op, fields::OP_XORI as u64);
    let is_lui = builder.eq_const(op, fields::OP_LUI as u64);
    let is_lw = builder.eq_const(op, fields::OP_LW as u64);
    let is_sw = builder.eq_const(op, fields::OP_SW as u64);
    let is_beq = builder.eq_const(op, fields::OP_BEQ as u64);
    let is_bne = builder.eq_const(op, fields::OP_BNE as u64);
    let is_j = builder.eq_const(op, fields::OP_J as u64);
    let is_jal = builder.eq_const(op, fields::OP_JAL as u64);
    let is_halt = builder.eq_const(op, fields::OP_HALT as u64);

    let fn_dec = |builder: &mut NetlistBuilder, code: u32| {
        let raw = builder.eq_const(funct, code as u64);
        builder.and2(raw, is_rtype)
    };
    let fn_add = fn_dec(builder, fields::FN_ADD);
    let fn_sub = fn_dec(builder, fields::FN_SUB);
    let fn_and = fn_dec(builder, fields::FN_AND);
    let fn_or = fn_dec(builder, fields::FN_OR);
    let fn_xor = fn_dec(builder, fields::FN_XOR);
    let fn_sltu = fn_dec(builder, fields::FN_SLTU);
    let fn_sll = fn_dec(builder, fields::FN_SLL);
    let fn_srl = fn_dec(builder, fields::FN_SRL);

    let reg_write = builder.or(&[
        is_rtype, is_addi, is_andi, is_ori, is_xori, is_lui, is_lw, is_jal,
    ]);
    let alu_src_imm = builder.or(&[is_addi, is_andi, is_ori, is_xori, is_lw, is_sw]);
    let imm_zero_extend = builder.or(&[is_andi, is_ori, is_xori]);
    let is_jump = builder.or2(is_j, is_jal);
    let is_branch = builder.or2(is_beq, is_bne);

    builder.pop_group();

    Controls {
        is_rtype,
        is_addi,
        is_andi,
        is_ori,
        is_xori,
        is_lui,
        is_lw,
        is_sw,
        is_beq,
        is_bne,
        is_j,
        is_jal,
        is_halt,
        fn_add,
        fn_sub,
        fn_and,
        fn_or,
        fn_xor,
        fn_sltu,
        fn_sll,
        fn_srl,
        reg_write,
        alu_src_imm,
        imm_zero_extend,
        wb_from_mem: is_lw,
        wb_from_lui: is_lui,
        wb_from_link: is_jal,
        mem_write: is_sw,
        mem_read: is_lw,
        dest_is_rd: is_rtype,
        dest_is_link: is_jal,
        is_jump,
        is_branch,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::Instr;
    use atpg::{CombSim, Logic};
    use netlist::Netlist;
    use std::collections::HashMap;

    struct Harness {
        netlist: Netlist,
        instr: Word,
        controls: Controls,
    }

    fn build() -> Harness {
        let mut b = NetlistBuilder::new("dec");
        let instr = b.input_bus("instr", 32);
        let fields_in = InstrFields::split(&instr);
        let controls = generate_controls(&mut b, &fields_in);
        b.output("reg_write", controls.reg_write);
        b.output("mem_write", controls.mem_write);
        Harness {
            netlist: b.finish(),
            instr,
            controls,
        }
    }

    fn decode(h: &Harness, instr: Instr) -> Vec<(NetId, bool)> {
        let word = instr.encode();
        let sim = CombSim::new(&h.netlist).unwrap();
        let mut values = sim.blank_values();
        for (i, &net) in h.instr.iter().enumerate() {
            values[net.index()] = Logic::from_bool((word >> i) & 1 == 1);
        }
        sim.propagate(&mut values, &HashMap::new(), None);
        let nets = [
            h.controls.is_rtype,
            h.controls.reg_write,
            h.controls.mem_write,
            h.controls.mem_read,
            h.controls.is_branch,
            h.controls.is_jump,
            h.controls.is_halt,
            h.controls.fn_add,
            h.controls.fn_sub,
            h.controls.alu_src_imm,
            h.controls.imm_zero_extend,
            h.controls.dest_is_rd,
            h.controls.dest_is_link,
        ];
        nets.iter()
            .map(|&n| (n, values[n.index()].to_bool().unwrap()))
            .collect()
    }

    fn value_of(results: &[(NetId, bool)], net: NetId) -> bool {
        results.iter().find(|&&(n, _)| n == net).unwrap().1
    }

    #[test]
    fn rtype_add_controls() {
        let h = build();
        let r = decode(
            &h,
            Instr::Add {
                rd: 1,
                rs: 2,
                rt: 3,
            },
        );
        assert!(value_of(&r, h.controls.is_rtype));
        assert!(value_of(&r, h.controls.reg_write));
        assert!(value_of(&r, h.controls.fn_add));
        assert!(!value_of(&r, h.controls.fn_sub));
        assert!(!value_of(&r, h.controls.mem_write));
        assert!(!value_of(&r, h.controls.alu_src_imm));
        assert!(value_of(&r, h.controls.dest_is_rd));
    }

    #[test]
    fn store_controls() {
        let h = build();
        let r = decode(
            &h,
            Instr::Sw {
                rt: 2,
                rs: 1,
                imm: 4,
            },
        );
        assert!(value_of(&r, h.controls.mem_write));
        assert!(!value_of(&r, h.controls.reg_write));
        assert!(value_of(&r, h.controls.alu_src_imm));
        assert!(!value_of(&r, h.controls.imm_zero_extend));
    }

    #[test]
    fn load_controls() {
        let h = build();
        let r = decode(
            &h,
            Instr::Lw {
                rt: 2,
                rs: 1,
                imm: 4,
            },
        );
        assert!(value_of(&r, h.controls.mem_read));
        assert!(value_of(&r, h.controls.reg_write));
        assert!(!value_of(&r, h.controls.mem_write));
    }

    #[test]
    fn branch_jump_halt_controls() {
        let h = build();
        let r = decode(
            &h,
            Instr::Beq {
                rs: 1,
                rt: 2,
                imm: 3,
            },
        );
        assert!(value_of(&r, h.controls.is_branch));
        assert!(!value_of(&r, h.controls.reg_write));
        let r = decode(&h, Instr::Jal { target: 0x40 });
        assert!(value_of(&r, h.controls.is_jump));
        assert!(value_of(&r, h.controls.reg_write));
        assert!(value_of(&r, h.controls.dest_is_link));
        let r = decode(&h, Instr::Halt);
        assert!(value_of(&r, h.controls.is_halt));
        assert!(!value_of(&r, h.controls.reg_write));
    }

    #[test]
    fn logical_immediates_zero_extend() {
        let h = build();
        let r = decode(
            &h,
            Instr::Andi {
                rt: 1,
                rs: 2,
                imm: 0xff,
            },
        );
        assert!(value_of(&r, h.controls.imm_zero_extend));
        assert!(value_of(&r, h.controls.alu_src_imm));
        let r = decode(
            &h,
            Instr::Addi {
                rt: 1,
                rs: 2,
                imm: -1,
            },
        );
        assert!(!value_of(&r, h.controls.imm_zero_extend));
    }

    #[test]
    fn nop_writes_register_zero_only() {
        let h = build();
        let r = decode(&h, Instr::Nop);
        // NOP is sll r0, r0, 0: technically an R-type write to r0 which the
        // register file ignores.
        assert!(value_of(&r, h.controls.is_rtype));
        assert!(value_of(&r, h.controls.reg_write));
    }

    #[test]
    fn decode_cells_are_grouped() {
        let h = build();
        assert!(!h.netlist.cells_in_group("decode").is_empty());
    }
}
