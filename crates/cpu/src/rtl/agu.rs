//! Address generation unit: the dedicated adders that produce data addresses
//! and branch targets. These are exactly the "modules used to manipulate
//! addresses (i.e., adder for branch calculation)" whose inputs §3.3 ties off
//! under the mission memory map.

use super::{shift_left_2, sign_extend_16};
use netlist::{NetId, NetlistBuilder, Word};

/// The outputs of the address generation unit.
#[derive(Clone, Debug)]
pub struct Agu {
    /// Data memory address: `base + sign_extend(imm)`.
    pub data_address: Word,
    /// `pc + 4`.
    pub pc_plus_4: Word,
    /// Branch target: `pc + 4 + (sign_extend(imm) << 2)`.
    pub branch_target: Word,
    /// Jump target: `{(pc+4)[31:28], target26, 00}`.
    pub jump_target: Word,
}

/// Generates the AGU.
///
/// * `pc`: the 32-bit program counter value.
/// * `base`: the 32-bit base register value (rs).
/// * `imm16`: the 16-bit immediate field.
/// * `target26`: the 26-bit jump target field.
///
/// Cells are tagged `agu` (data-address adder), `agu.branch` (branch adder)
/// and `agu.jump` (jump-target wiring).
pub fn generate_agu(
    builder: &mut NetlistBuilder,
    pc: &[NetId],
    base: &[NetId],
    imm16: &[NetId],
    target26: &[NetId],
) -> Agu {
    assert_eq!(pc.len(), 32);
    assert_eq!(base.len(), 32);
    assert_eq!(imm16.len(), 16);
    assert_eq!(target26.len(), 26);

    builder.push_group("agu");

    let imm_ext = sign_extend_16(imm16);

    // Data address adder.
    let zero = builder.tie0();
    let (data_address, _) = builder.ripple_adder(base, &imm_ext, zero);

    // PC + 4 (a dedicated incrementer on the upper 30 bits).
    let four = builder.const_word(4, 32);
    let (pc_plus_4, _) = builder.ripple_adder(pc, &four, zero);

    // Branch adder.
    builder.push_group("branch");
    let offset = shift_left_2(builder, &imm_ext);
    let (branch_target, _) = builder.ripple_adder(&pc_plus_4, &offset, zero);
    builder.pop_group();

    // Jump target: wiring plus the top nibble of pc+4.
    builder.push_group("jump");
    let mut jump_target: Word = vec![zero, zero];
    jump_target.extend_from_slice(target26);
    jump_target.extend_from_slice(&pc_plus_4[28..32]);
    // Buffer the jump target so the unit owns at least some cells (and so a
    // fault site exists per bit, as in a real implementation's bus drivers).
    let jump_target: Word = jump_target.iter().map(|&bit| builder.buf(bit)).collect();
    builder.pop_group();

    builder.pop_group();

    Agu {
        data_address,
        pc_plus_4,
        branch_target,
        jump_target,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atpg::{CombSim, Logic};
    use netlist::Netlist;
    use std::collections::HashMap;

    struct Harness {
        netlist: Netlist,
        pc: Word,
        base: Word,
        imm: Word,
        target: Word,
        agu: Agu,
    }

    fn build() -> Harness {
        let mut b = NetlistBuilder::new("agu");
        let pc = b.input_bus("pc", 32);
        let base = b.input_bus("base", 32);
        let imm = b.input_bus("imm", 16);
        let target = b.input_bus("target", 26);
        let agu = generate_agu(&mut b, &pc, &base, &imm, &target);
        b.output_bus("daddr", &agu.data_address);
        b.output_bus("pc4", &agu.pc_plus_4);
        b.output_bus("btgt", &agu.branch_target);
        b.output_bus("jtgt", &agu.jump_target);
        Harness {
            netlist: b.finish(),
            pc,
            base,
            imm,
            target,
            agu,
        }
    }

    fn eval(h: &Harness, pc: u32, base: u32, imm: u16, target: u32) -> (u32, u32, u32, u32) {
        let sim = CombSim::new(&h.netlist).unwrap();
        let mut values = sim.blank_values();
        let set = |word: &[NetId], v: u64, values: &mut Vec<Logic>| {
            for (i, &net) in word.iter().enumerate() {
                values[net.index()] = Logic::from_bool((v >> i) & 1 == 1);
            }
        };
        set(&h.pc, pc as u64, &mut values);
        set(&h.base, base as u64, &mut values);
        set(&h.imm, imm as u64, &mut values);
        set(&h.target, target as u64, &mut values);
        sim.propagate(&mut values, &HashMap::new(), None);
        let get = |word: &[NetId]| -> u32 {
            word.iter()
                .enumerate()
                .map(|(i, &net)| (values[net.index()].to_bool().unwrap() as u32) << i)
                .sum()
        };
        (
            get(&h.agu.data_address),
            get(&h.agu.pc_plus_4),
            get(&h.agu.branch_target),
            get(&h.agu.jump_target),
        )
    }

    #[test]
    fn data_address_adds_signed_offset() {
        let h = build();
        let (daddr, ..) = eval(&h, 0, 0x4000_0000, 8, 0);
        assert_eq!(daddr, 0x4000_0008);
        let (daddr, ..) = eval(&h, 0, 0x4000_0000, (-4i16) as u16, 0);
        assert_eq!(daddr, 0x3FFF_FFFC);
    }

    #[test]
    fn pc_plus_4_increments() {
        let h = build();
        let (_, pc4, ..) = eval(&h, 0x0007_8000, 0, 0, 0);
        assert_eq!(pc4, 0x0007_8004);
    }

    #[test]
    fn branch_target_matches_iss_formula() {
        let h = build();
        for (pc, imm) in [(0x100u32, 5i16), (0x100, -5), (0x0007_8000, 0x7fff)] {
            let (_, _, btgt, _) = eval(&h, pc, 0, imm as u16, 0);
            let expected = pc.wrapping_add(4).wrapping_add((imm as i32 as u32) << 2);
            assert_eq!(btgt, expected, "pc={pc:#x} imm={imm}");
        }
    }

    #[test]
    fn jump_target_combines_fields() {
        let h = build();
        let (_, _, _, jtgt) = eval(&h, 0x4000_1000, 0, 0, 0x12345);
        assert_eq!(jtgt, (0x4000_1004 & 0xf000_0000) | (0x12345 << 2));
    }

    #[test]
    fn groups_are_assigned() {
        let h = build();
        assert!(!h.netlist.cells_in_group("agu").is_empty());
        assert!(!h.netlist.cells_in_group("agu.branch").is_empty());
        assert!(!h.netlist.cells_in_group("agu.jump").is_empty());
    }
}
