//! Arithmetic-logic unit generator: add/sub, bitwise logic, unsigned
//! compare and logical shifts, selected by one-hot control signals.

use netlist::{NetId, NetlistBuilder, Word};

/// One-hot operation selects for the ALU (exactly one should be high; when
/// none is, the adder result is produced).
#[derive(Clone, Debug)]
pub struct AluControl {
    /// Subtract instead of add (also selects the subtraction datapath for the
    /// unsigned compare).
    pub op_sub: NetId,
    /// Select the bitwise AND result.
    pub op_and: NetId,
    /// Select the bitwise OR result.
    pub op_or: NetId,
    /// Select the bitwise XOR result.
    pub op_xor: NetId,
    /// Select the unsigned set-on-less-than result.
    pub op_sltu: NetId,
    /// Select the logical left shift result.
    pub op_sll: NetId,
    /// Select the logical right shift result.
    pub op_srl: NetId,
}

/// The outputs of a generated ALU.
#[derive(Clone, Debug)]
pub struct Alu {
    /// The selected 32-bit result.
    pub result: Word,
    /// `a == b` (used by the branch unit).
    pub equal: NetId,
}

/// Generates the ALU. `shamt` is the 5-bit shift amount; shifts operate on
/// operand `b` (matching the ISA, where `sll rd, rt, shamt` shifts `rt`).
///
/// All cells are tagged with the `alu` group.
pub fn generate_alu(
    builder: &mut NetlistBuilder,
    a: &[NetId],
    b: &[NetId],
    shamt: &[NetId],
    control: &AluControl,
) -> Alu {
    assert_eq!(a.len(), 32);
    assert_eq!(b.len(), 32);
    assert_eq!(shamt.len(), 5);

    builder.push_group("alu");

    // Adder / subtractor: b is conditionally inverted and the carry-in set.
    let do_sub = builder.or2(control.op_sub, control.op_sltu);
    let b_inverted = builder.not_word(b);
    let b_eff = builder.mux2_word(b, &b_inverted, do_sub);
    let (sum, carry_out) = builder.ripple_adder(a, &b_eff, do_sub);

    // Unsigned less-than: with a - b computed, carry-out == 0 means a < b.
    let lt = builder.not(carry_out);
    let zero = builder.tie0();
    let mut sltu_word = vec![zero; 32];
    sltu_word[0] = lt;

    // Bitwise logic.
    let and_w = builder.and_word(a, b);
    let or_w = builder.or_word(a, b);
    let xor_w = builder.xor_word(a, b);

    // Shifts.
    let sll_w = builder.shift_left(b, shamt);
    let srl_w = builder.shift_right(b, shamt);

    // Result selection (priority chain of 2-to-1 muxes).
    let mut result = sum;
    result = builder.mux2_word(&result, &and_w, control.op_and);
    result = builder.mux2_word(&result, &or_w, control.op_or);
    result = builder.mux2_word(&result, &xor_w, control.op_xor);
    result = builder.mux2_word(&result, &sltu_word, control.op_sltu);
    result = builder.mux2_word(&result, &sll_w, control.op_sll);
    result = builder.mux2_word(&result, &srl_w, control.op_srl);

    // Equality for branches.
    let equal = builder.eq_words(a, b);

    builder.pop_group();

    Alu { result, equal }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atpg::{CombSim, Logic};
    use netlist::Netlist;
    use std::collections::HashMap;

    struct Harness {
        netlist: Netlist,
        a: Word,
        b: Word,
        shamt: Word,
        controls: Vec<NetId>,
        result: Word,
        equal: NetId,
    }

    fn build() -> Harness {
        let mut bld = NetlistBuilder::new("alu");
        let a = bld.input_bus("a", 32);
        let b = bld.input_bus("b", 32);
        let shamt = bld.input_bus("shamt", 5);
        let names = ["sub", "and", "or", "xor", "sltu", "sll", "srl"];
        let controls: Vec<NetId> = names.iter().map(|n| bld.input(*n)).collect();
        let control = AluControl {
            op_sub: controls[0],
            op_and: controls[1],
            op_or: controls[2],
            op_xor: controls[3],
            op_sltu: controls[4],
            op_sll: controls[5],
            op_srl: controls[6],
        };
        let alu = generate_alu(&mut bld, &a, &b, &shamt, &control);
        bld.output_bus("result", &alu.result);
        bld.output("eq", alu.equal);
        Harness {
            netlist: bld.finish(),
            a,
            b,
            shamt,
            controls,
            result: alu.result,
            equal: alu.equal,
        }
    }

    fn eval(h: &Harness, a: u32, b: u32, shamt: u32, op: Option<usize>) -> (u32, bool) {
        let sim = CombSim::new(&h.netlist).unwrap();
        let mut values = sim.blank_values();
        for (i, &net) in h.a.iter().enumerate() {
            values[net.index()] = Logic::from_bool((a >> i) & 1 == 1);
        }
        for (i, &net) in h.b.iter().enumerate() {
            values[net.index()] = Logic::from_bool((b >> i) & 1 == 1);
        }
        for (i, &net) in h.shamt.iter().enumerate() {
            values[net.index()] = Logic::from_bool((shamt >> i) & 1 == 1);
        }
        for (i, &net) in h.controls.iter().enumerate() {
            values[net.index()] = Logic::from_bool(Some(i) == op);
        }
        sim.propagate(&mut values, &HashMap::new(), None);
        let result: u32 = h
            .result
            .iter()
            .enumerate()
            .map(|(i, &net)| (values[net.index()].to_bool().unwrap() as u32) << i)
            .sum();
        let equal = values[h.equal.index()].to_bool().unwrap();
        (result, equal)
    }

    #[test]
    fn add_and_sub() {
        let h = build();
        assert_eq!(eval(&h, 100, 23, 0, None).0, 123);
        assert_eq!(eval(&h, 5, 7, 0, Some(0)).0, 5u32.wrapping_sub(7));
        assert_eq!(eval(&h, u32::MAX, 1, 0, None).0, 0, "wrap-around add");
    }

    #[test]
    fn bitwise_ops() {
        let h = build();
        let a = 0xF0F0_AAAA;
        let b = 0x0FF0_5555;
        assert_eq!(eval(&h, a, b, 0, Some(1)).0, a & b);
        assert_eq!(eval(&h, a, b, 0, Some(2)).0, a | b);
        assert_eq!(eval(&h, a, b, 0, Some(3)).0, a ^ b);
    }

    #[test]
    fn unsigned_compare() {
        let h = build();
        assert_eq!(eval(&h, 3, 5, 0, Some(4)).0, 1);
        assert_eq!(eval(&h, 5, 3, 0, Some(4)).0, 0);
        assert_eq!(eval(&h, 7, 7, 0, Some(4)).0, 0);
        assert_eq!(eval(&h, 1, 0xFFFF_FFFF, 0, Some(4)).0, 1);
    }

    #[test]
    fn shifts() {
        let h = build();
        assert_eq!(eval(&h, 0, 0x0000_00FF, 4, Some(5)).0, 0xFF0);
        assert_eq!(eval(&h, 0, 0x8000_0000, 31, Some(6)).0, 1);
        assert_eq!(eval(&h, 0, 0xFFFF_FFFF, 31, Some(5)).0, 0x8000_0000);
        assert_eq!(eval(&h, 0, 0x1234_5678, 0, Some(6)).0, 0x1234_5678);
    }

    #[test]
    fn equality_flag() {
        let h = build();
        assert!(eval(&h, 42, 42, 0, None).1);
        assert!(!eval(&h, 42, 43, 0, None).1);
    }

    #[test]
    fn cells_are_grouped() {
        let h = build();
        assert!(!h.netlist.cells_in_group("alu").is_empty());
    }
}
