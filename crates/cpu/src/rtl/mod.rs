//! Gate-level datapath generators for the `mini32` core.
//!
//! Each submodule contributes one functional unit, built through the
//! [`netlist::NetlistBuilder`] word-level helpers and tagged with a group so
//! that the identification flow can locate it later (`"regfile"`, `"alu"`,
//! `"agu"`, `"btb"`, `"decode"`, …).

pub mod agu;
pub mod alu;
pub mod btb;
pub mod decode;
pub mod regfile;

use netlist::{NetId, NetlistBuilder, Word};

/// Sign-extends a 16-bit word to 32 bits (by wiring, no gates).
pub fn sign_extend_16(word: &[NetId]) -> Word {
    assert_eq!(word.len(), 16, "sign_extend_16 needs a 16-bit word");
    let mut out = word.to_vec();
    let msb = word[15];
    out.extend(std::iter::repeat_n(msb, 16));
    out
}

/// Zero-extends a 16-bit word to 32 bits using the builder's constant-0 net.
pub fn zero_extend_16(builder: &mut NetlistBuilder, word: &[NetId]) -> Word {
    assert_eq!(word.len(), 16, "zero_extend_16 needs a 16-bit word");
    let zero = builder.tie0();
    let mut out = word.to_vec();
    out.extend(std::iter::repeat_n(zero, 16));
    out
}

/// Shifts a 32-bit word left by two positions by wiring (used for branch
/// offsets).
pub fn shift_left_2(builder: &mut NetlistBuilder, word: &[NetId]) -> Word {
    assert_eq!(word.len(), 32, "shift_left_2 needs a 32-bit word");
    let zero = builder.tie0();
    let mut out = vec![zero, zero];
    out.extend_from_slice(&word[..30]);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use netlist::NetlistBuilder;

    #[test]
    fn sign_extension_replicates_msb() {
        let mut b = NetlistBuilder::new("t");
        let w = b.input_bus("w", 16);
        let ext = sign_extend_16(&w);
        assert_eq!(ext.len(), 32);
        for bit in &ext[16..] {
            assert_eq!(*bit, w[15]);
        }
    }

    #[test]
    fn zero_extension_uses_tie() {
        let mut b = NetlistBuilder::new("t");
        let w = b.input_bus("w", 16);
        let ext = zero_extend_16(&mut b, &w);
        assert_eq!(ext.len(), 32);
        assert_eq!(ext[16], ext[31]);
    }

    #[test]
    fn shift_left_2_rewires() {
        let mut b = NetlistBuilder::new("t");
        let w = b.input_bus("w", 32);
        let shifted = shift_left_2(&mut b, &w);
        assert_eq!(shifted.len(), 32);
        assert_eq!(shifted[2], w[0]);
        assert_eq!(shifted[31], w[29]);
    }
}
