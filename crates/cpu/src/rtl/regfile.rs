//! General-purpose register file generator: two combinational read ports and
//! one synchronous write port. Register 0 is hardwired to zero.

use netlist::{NetId, NetlistBuilder, Word};

/// The nets of a generated register file.
#[derive(Clone, Debug)]
pub struct RegFile {
    /// Per-register output words (`registers[0]` is the constant-zero word).
    pub registers: Vec<Word>,
    /// Read port A data (selected by `rs`).
    pub read_a: Word,
    /// Read port B data (selected by `rt`).
    pub read_b: Word,
}

/// Generates a register file with `num_regs` physical registers (2..=32).
///
/// * `rs`, `rt`: 5-bit read select fields.
/// * `dest`: 5-bit write select field.
/// * `write_enable`: global write strobe.
/// * `write_data`: 32-bit write value.
///
/// All cells are tagged with the `regfile` group.
#[allow(clippy::too_many_arguments)]
pub fn generate_regfile(
    builder: &mut NetlistBuilder,
    clock: NetId,
    num_regs: usize,
    rs: &[NetId],
    rt: &[NetId],
    dest: &[NetId],
    write_enable: NetId,
    write_data: &[NetId],
) -> RegFile {
    assert!((2..=32).contains(&num_regs), "num_regs must be in 2..=32");
    assert_eq!(rs.len(), 5);
    assert_eq!(rt.len(), 5);
    assert_eq!(dest.len(), 5);
    assert_eq!(write_data.len(), 32);

    builder.push_group("regfile");

    let zero_word = builder.const_word(0, 32);
    let mut registers: Vec<Word> = Vec::with_capacity(num_regs);
    registers.push(zero_word.clone());

    for index in 1..num_regs {
        let select = builder.eq_const(dest, index as u64);
        let enable = builder.and2(select, write_enable);
        let q = builder.register_en(write_data, enable, clock);
        registers.push(q);
    }

    // Read ports: a mux tree over the physical registers (padded to the next
    // power of two with the zero word), gated so that selects beyond the
    // physical range read zero. With the full 32-register configuration the
    // gating disappears into simple wiring of the 5 select bits.
    let select_bits = (usize::BITS - (num_regs - 1).leading_zeros()) as usize;
    let padded: Vec<Word> = (0..(1usize << select_bits))
        .map(|i| {
            registers
                .get(i)
                .cloned()
                .unwrap_or_else(|| zero_word.clone())
        })
        .collect();
    let read_port = |builder: &mut NetlistBuilder, sel: &[NetId]| -> Word {
        let raw = builder.mux_tree(&padded, &sel[..select_bits]);
        if select_bits == 5 {
            raw
        } else {
            let out_of_range = builder.or(&sel[select_bits..]);
            let in_range = builder.not(out_of_range);
            raw.iter().map(|&bit| builder.and2(bit, in_range)).collect()
        }
    };
    let read_a = read_port(builder, rs);
    let read_b = read_port(builder, rt);

    builder.pop_group();

    RegFile {
        registers,
        read_a,
        read_b,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atpg::{Logic, SeqSim};
    use netlist::Netlist;
    use std::collections::HashMap;

    struct Harness {
        netlist: Netlist,
        clock: NetId,
        rs: Word,
        rt: Word,
        dest: Word,
        we: NetId,
        wdata: Word,
        read_a: Word,
        read_b: Word,
    }

    fn build(num_regs: usize) -> Harness {
        let mut b = NetlistBuilder::new("rf");
        let clock = b.input("ck");
        let rs = b.input_bus("rs", 5);
        let rt = b.input_bus("rt", 5);
        let dest = b.input_bus("dest", 5);
        let we = b.input("we");
        let wdata = b.input_bus("wdata", 32);
        let rf = generate_regfile(&mut b, clock, num_regs, &rs, &rt, &dest, we, &wdata);
        b.output_bus("ra", &rf.read_a);
        b.output_bus("rb", &rf.read_b);
        Harness {
            netlist: b.finish(),
            clock,
            rs,
            rt,
            dest,
            we,
            wdata,
            read_a: rf.read_a,
            read_b: rf.read_b,
        }
    }

    fn set_word(v: &mut HashMap<NetId, Logic>, word: &[NetId], value: u64) {
        for (i, &net) in word.iter().enumerate() {
            v.insert(net, Logic::from_bool((value >> i) & 1 == 1));
        }
    }

    fn get_word(values: &[Logic], word: &[NetId]) -> u64 {
        word.iter()
            .enumerate()
            .map(|(i, &net)| (values[net.index()].to_bool().unwrap_or(false) as u64) << i)
            .sum()
    }

    #[test]
    fn write_then_read_back() {
        let h = build(32);
        let sim = SeqSim::new(&h.netlist).unwrap();
        let mut state = sim.uniform_state(Logic::Zero);
        // Write 0xCAFE to r5.
        let mut v = HashMap::new();
        v.insert(h.clock, Logic::One);
        v.insert(h.we, Logic::One);
        set_word(&mut v, &h.dest, 5);
        set_word(&mut v, &h.wdata, 0xCAFE);
        set_word(&mut v, &h.rs, 0);
        set_word(&mut v, &h.rt, 0);
        sim.step(&mut state, &v, &HashMap::new(), None);
        // Read r5 on port A, r0 on port B.
        let mut v2 = HashMap::new();
        v2.insert(h.clock, Logic::One);
        v2.insert(h.we, Logic::Zero);
        set_word(&mut v2, &h.dest, 0);
        set_word(&mut v2, &h.wdata, 0);
        set_word(&mut v2, &h.rs, 5);
        set_word(&mut v2, &h.rt, 0);
        let values = sim.step(&mut state, &v2, &HashMap::new(), None);
        assert_eq!(get_word(&values, &h.read_a), 0xCAFE);
        assert_eq!(get_word(&values, &h.read_b), 0);
    }

    #[test]
    fn register_zero_ignores_writes() {
        let h = build(32);
        let sim = SeqSim::new(&h.netlist).unwrap();
        let mut state = sim.uniform_state(Logic::Zero);
        let mut v = HashMap::new();
        v.insert(h.clock, Logic::One);
        v.insert(h.we, Logic::One);
        set_word(&mut v, &h.dest, 0);
        set_word(&mut v, &h.wdata, 0xFFFF_FFFF);
        set_word(&mut v, &h.rs, 0);
        set_word(&mut v, &h.rt, 0);
        sim.step(&mut state, &v, &HashMap::new(), None);
        let values = sim.step(&mut state, &v, &HashMap::new(), None);
        assert_eq!(get_word(&values, &h.read_a), 0);
    }

    #[test]
    fn write_enable_gates_the_write() {
        let h = build(16);
        let sim = SeqSim::new(&h.netlist).unwrap();
        let mut state = sim.uniform_state(Logic::Zero);
        let mut v = HashMap::new();
        v.insert(h.clock, Logic::One);
        v.insert(h.we, Logic::Zero);
        set_word(&mut v, &h.dest, 3);
        set_word(&mut v, &h.wdata, 0x1234);
        set_word(&mut v, &h.rs, 3);
        set_word(&mut v, &h.rt, 3);
        sim.step(&mut state, &v, &HashMap::new(), None);
        let values = sim.step(&mut state, &v, &HashMap::new(), None);
        assert_eq!(get_word(&values, &h.read_a), 0, "write was disabled");
    }

    #[test]
    fn unimplemented_registers_read_zero() {
        let h = build(8);
        let sim = SeqSim::new(&h.netlist).unwrap();
        let mut state = sim.uniform_state(Logic::Zero);
        // Attempt to write r20 (not physically present) and read it back.
        let mut v = HashMap::new();
        v.insert(h.clock, Logic::One);
        v.insert(h.we, Logic::One);
        set_word(&mut v, &h.dest, 20);
        set_word(&mut v, &h.wdata, 0xFF);
        set_word(&mut v, &h.rs, 20);
        set_word(&mut v, &h.rt, 1);
        sim.step(&mut state, &v, &HashMap::new(), None);
        let values = sim.step(&mut state, &v, &HashMap::new(), None);
        assert_eq!(get_word(&values, &h.read_a), 0);
    }

    #[test]
    fn cells_are_grouped() {
        let h = build(8);
        assert!(!h.netlist.cells_in_group("regfile").is_empty());
        // And the flip-flops all live in that group.
        for ff in h.netlist.sequential_cells() {
            assert!(h.netlist.cell(ff).attrs().in_group("regfile"));
        }
    }
}
