//! Memory models: the sparse word-addressed memory used by the instruction
//! set simulator, and the SoC memory map with the address-bit analysis of
//! §3.3.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// The kind of a mapped memory region.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum RegionKind {
    /// Non-volatile program memory.
    Flash,
    /// Volatile data memory.
    Ram,
    /// Memory-mapped peripheral registers.
    Peripheral,
}

/// One contiguous region of the memory map.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemRegion {
    /// First byte address of the region.
    pub base: u32,
    /// Size in bytes (must be non-zero).
    pub size: u32,
    /// What the region is.
    pub kind: RegionKind,
}

impl MemRegion {
    /// Creates a region.
    ///
    /// # Panics
    ///
    /// Panics if `size` is zero or the region wraps past the end of the
    /// address space.
    pub fn new(base: u32, size: u32, kind: RegionKind) -> Self {
        assert!(size > 0, "memory region must have a non-zero size");
        assert!(
            base.checked_add(size - 1).is_some(),
            "memory region wraps around the address space"
        );
        MemRegion { base, size, kind }
    }

    /// Last byte address of the region (inclusive).
    pub fn last(&self) -> u32 {
        self.base + (self.size - 1)
    }

    /// Whether `addr` falls inside the region.
    pub fn contains(&self, addr: u32) -> bool {
        addr >= self.base && addr <= self.last()
    }
}

/// Whether the contiguous range `[lo, hi]` contains an address whose bit
/// `bit` equals `value`.
fn range_has_bit_value(lo: u32, hi: u32, bit: u32, value: bool) -> bool {
    debug_assert!(lo <= hi);
    let period = 1u64 << (bit + 1);
    let half = 1u64 << bit;
    // Addresses with bit==1 form blocks [k*period + half, k*period + period-1].
    // Walk at most two blocks around lo.
    let lo = lo as u64;
    let hi = hi as u64;
    let len = hi - lo + 1;
    if len >= period {
        return true;
    }
    // Phase-space view: the range occupies [phase, end_phase] where
    // end_phase may exceed the period (wrap-around into the next block).
    let phase = lo % period;
    let end_phase = phase + len - 1;
    if value {
        // Overlap with the bit==1 half-block [half, period-1], either in the
        // un-wrapped part of the range or in the wrapped part.
        end_phase.min(period - 1) >= half || end_phase >= period + half
    } else {
        // Overlap with the bit==0 half-block [0, half-1].
        phase < half || end_phase >= period
    }
}

/// The SoC memory map: the set of address ranges that the processor can
/// legally access in mission mode.
///
/// # Examples
///
/// The configuration of the paper's case study (§4):
///
/// ```
/// use cpu::mem::{MemoryMap, MemRegion, RegionKind};
///
/// let map = MemoryMap::new(vec![
///     MemRegion::new(0x0007_8000, 0x0000_8000, RegionKind::Flash),
///     MemRegion::new(0x4000_0000, 0x0002_0000, RegionKind::Ram),
/// ]);
/// let toggling = map.toggling_address_bits();
/// // The low address bits and bit 30 can change; the bits in between are
/// // frozen (the paper reports "the 18 less significant bits and the 30th").
/// assert!(toggling.contains(&0));
/// assert!(toggling.contains(&30));
/// assert!(!toggling.contains(&25));
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemoryMap {
    regions: Vec<MemRegion>,
}

impl MemoryMap {
    /// Creates a memory map from its regions.
    ///
    /// # Panics
    ///
    /// Panics if `regions` is empty.
    pub fn new(regions: Vec<MemRegion>) -> Self {
        assert!(!regions.is_empty(), "memory map needs at least one region");
        MemoryMap { regions }
    }

    /// The paper's case-study map: 32 KiB of flash at `0x0007_8000` and
    /// 128 KiB of RAM at `0x4000_0000`.
    pub fn date13_case_study() -> Self {
        MemoryMap::new(vec![
            MemRegion::new(0x0007_8000, 0x0000_8000, RegionKind::Flash),
            MemRegion::new(0x4000_0000, 0x0002_0000, RegionKind::Ram),
        ])
    }

    /// The small explanatory map of §3.3: a 4 KiB flash and a 1 KiB RAM
    /// mapped one after the other from address 0.
    pub fn date13_example() -> Self {
        MemoryMap::new(vec![
            MemRegion::new(0x0000_0000, 0x0000_1000, RegionKind::Flash),
            MemRegion::new(0x0000_1000, 0x0000_0400, RegionKind::Ram),
        ])
    }

    /// The regions of the map.
    pub fn regions(&self) -> &[MemRegion] {
        &self.regions
    }

    /// The first region of the given kind, if any.
    pub fn region_of_kind(&self, kind: RegionKind) -> Option<&MemRegion> {
        self.regions.iter().find(|r| r.kind == kind)
    }

    /// Whether `addr` is mapped.
    pub fn contains(&self, addr: u32) -> bool {
        self.regions.iter().any(|r| r.contains(addr))
    }

    /// Address bits that can legally take both values somewhere in the map.
    pub fn toggling_address_bits(&self) -> Vec<u32> {
        (0..32)
            .filter(|&bit| {
                let has0 = self
                    .regions
                    .iter()
                    .any(|r| range_has_bit_value(r.base, r.last(), bit, false));
                let has1 = self
                    .regions
                    .iter()
                    .any(|r| range_has_bit_value(r.base, r.last(), bit, true));
                has0 && has1
            })
            .collect()
    }

    /// Address bits that are frozen to a constant over every mapped address,
    /// with that constant value. These are the bits §3.3 ties off in address
    /// registers and address-manipulation logic.
    pub fn constant_address_bits(&self) -> Vec<(u32, bool)> {
        (0..32)
            .filter_map(|bit| {
                let has0 = self
                    .regions
                    .iter()
                    .any(|r| range_has_bit_value(r.base, r.last(), bit, false));
                let has1 = self
                    .regions
                    .iter()
                    .any(|r| range_has_bit_value(r.base, r.last(), bit, true));
                match (has0, has1) {
                    (true, false) => Some((bit, false)),
                    (false, true) => Some((bit, true)),
                    _ => None,
                }
            })
            .collect()
    }
}

impl fmt::Display for MemoryMap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for region in &self.regions {
            writeln!(
                f,
                "{:?}: {:#010x}..={:#010x} ({} bytes)",
                region.kind,
                region.base,
                region.last(),
                region.size
            )?;
        }
        write!(
            f,
            "toggling address bits: {:?}",
            self.toggling_address_bits()
        )
    }
}

/// Sparse word-addressed memory used by the instruction-set simulator.
///
/// Addresses are byte addresses; accesses must be 4-byte aligned.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Memory {
    words: BTreeMap<u32, u32>,
}

impl Memory {
    /// Creates an empty memory (all words read as zero).
    pub fn new() -> Self {
        Memory::default()
    }

    /// Reads the aligned word at `addr`.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is not 4-byte aligned.
    pub fn read_word(&self, addr: u32) -> u32 {
        assert_eq!(addr % 4, 0, "unaligned read at {addr:#010x}");
        self.words.get(&addr).copied().unwrap_or(0)
    }

    /// Writes the aligned word at `addr`.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is not 4-byte aligned.
    pub fn write_word(&mut self, addr: u32, value: u32) {
        assert_eq!(addr % 4, 0, "unaligned write at {addr:#010x}");
        self.words.insert(addr, value);
    }

    /// Loads a program image (one word per instruction) starting at `base`.
    pub fn load_words(&mut self, base: u32, words: &[u32]) {
        for (i, &w) in words.iter().enumerate() {
            self.write_word(base + (i as u32) * 4, w);
        }
    }

    /// Iterates over all explicitly written words in address order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, u32)> + '_ {
        self.words.iter().map(|(&a, &v)| (a, v))
    }

    /// Number of explicitly written words.
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// True if no word was ever written.
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn region_bounds() {
        let r = MemRegion::new(0x1000, 0x100, RegionKind::Ram);
        assert_eq!(r.last(), 0x10ff);
        assert!(r.contains(0x1000));
        assert!(r.contains(0x10ff));
        assert!(!r.contains(0x1100));
        assert!(!r.contains(0xfff));
    }

    #[test]
    #[should_panic(expected = "non-zero size")]
    fn zero_size_region_panics() {
        MemRegion::new(0, 0, RegionKind::Ram);
    }

    #[test]
    fn range_bit_values_brute_force() {
        // Compare the analytic helper against brute force on small ranges.
        for lo in 0u32..48 {
            for hi in lo..48 {
                for bit in 0..7u32 {
                    for value in [false, true] {
                        let expected = (lo..=hi).any(|a| ((a >> bit) & 1 == 1) == value);
                        assert_eq!(
                            range_has_bit_value(lo, hi, bit, value),
                            expected,
                            "lo={lo} hi={hi} bit={bit} value={value}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn case_study_map_matches_paper_shape() {
        let map = MemoryMap::date13_case_study();
        let toggling = map.toggling_address_bits();
        // Low bits toggle inside the RAM region (it is 128 KiB = 2^17).
        for bit in 0..17 {
            assert!(toggling.contains(&bit), "bit {bit} should toggle");
        }
        // Bit 30 distinguishes flash from RAM.
        assert!(toggling.contains(&30));
        // Bits 20..=29 and 31 never change.
        for bit in (20..30).chain([31]) {
            assert!(!toggling.contains(&bit), "bit {bit} should be constant");
        }
        let constants = map.constant_address_bits();
        assert!(
            constants.iter().all(|&(_, v)| !v),
            "all frozen bits are 0 here"
        );
        assert!(constants.iter().any(|&(b, _)| b == 31));
        // Sanity: toggling + constant = 32 bits.
        assert_eq!(toggling.len() + constants.len(), 32);
    }

    #[test]
    fn example_map_uses_low_bits_only() {
        let map = MemoryMap::date13_example();
        let toggling = map.toggling_address_bits();
        // 4 KiB + 1 KiB mapped from 0: only bits 0..=12 can change
        // (0x0000..0x13FF).
        assert_eq!(toggling.iter().max(), Some(&12));
        let constants = map.constant_address_bits();
        assert_eq!(constants.len(), 32 - toggling.len());
    }

    #[test]
    fn map_lookup() {
        let map = MemoryMap::date13_case_study();
        assert!(map.contains(0x0007_8000));
        assert!(map.contains(0x4001_ffff));
        assert!(!map.contains(0x4002_0000));
        assert!(!map.contains(0x0));
        assert_eq!(
            map.region_of_kind(RegionKind::Flash).unwrap().base,
            0x0007_8000
        );
        assert!(map.region_of_kind(RegionKind::Peripheral).is_none());
        let text = map.to_string();
        assert!(text.contains("Flash"));
    }

    #[test]
    fn memory_read_write() {
        let mut mem = Memory::new();
        assert_eq!(mem.read_word(0x100), 0);
        mem.write_word(0x100, 0xdeadbeef);
        assert_eq!(mem.read_word(0x100), 0xdeadbeef);
        mem.load_words(0x200, &[1, 2, 3]);
        assert_eq!(mem.read_word(0x208), 3);
        assert_eq!(mem.len(), 4);
        assert!(!mem.is_empty());
        assert_eq!(mem.iter().count(), 4);
    }

    #[test]
    #[should_panic(expected = "unaligned")]
    fn unaligned_access_panics() {
        let mem = Memory::new();
        mem.read_word(0x102);
    }
}
