//! Software-based self-test (SBST) program library and stimulus extraction.
//!
//! The paper's case study starts from a "quite mature self-test program
//! suite"; this module provides a small but representative suite — ALU,
//! register-file, branch/jump and load/store test programs that accumulate
//! their results into memory-visible signatures — plus the machinery to turn
//! an ISS run of a program into cycle-by-cycle stimuli for the gate-level
//! core (the testbench-fed functional simulation used to grade fault
//! coverage on the system bus).

use crate::core_gen::CoreInterface;
use crate::isa::Instr;
use crate::iss::{Iss, RunTrace, StopReason};
use crate::mem::Memory;
use atpg::{FaultSim, InputVector};
use faultmodel::StuckAt;
use netlist::CellId;
use serde::{Deserialize, Serialize};

/// A named SBST test program.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct SbstProgram {
    /// Short name ("alu", "regfile", …).
    pub name: String,
    /// The instructions, loaded from address 0.
    pub instructions: Vec<Instr>,
}

impl SbstProgram {
    /// Creates a program.
    pub fn new(name: impl Into<String>, instructions: Vec<Instr>) -> Self {
        SbstProgram {
            name: name.into(),
            instructions: instructions.clone(),
        }
    }

    /// The assembled machine words.
    pub fn words(&self) -> Vec<u32> {
        Instr::assemble(&self.instructions)
    }
}

/// Base address used by the test programs for their result signatures.
pub const SIGNATURE_BASE: i16 = 0x400;

fn store_sig(slot: i16, reg: u8) -> Instr {
    Instr::Sw {
        rt: reg,
        rs: 0,
        imm: SIGNATURE_BASE + slot * 4,
    }
}

/// An ALU-oriented test program: exercises add/sub/logic/compare/shift with
/// data patterns chosen to toggle both halves of the datapath, storing every
/// result to the signature area.
pub fn alu_test() -> SbstProgram {
    // Load four constants with complementary bit patterns.
    let mut p = vec![
        Instr::Lui { rt: 1, imm: 0xAAAA },
        Instr::Ori {
            rt: 1,
            rs: 1,
            imm: 0x5555,
        },
        Instr::Lui { rt: 2, imm: 0x5555 },
        Instr::Ori {
            rt: 2,
            rs: 2,
            imm: 0xAAAA,
        },
        Instr::Lui { rt: 3, imm: 0xFFFF },
        Instr::Ori {
            rt: 3,
            rs: 3,
            imm: 0xFFFF,
        },
        Instr::Addi {
            rt: 4,
            rs: 0,
            imm: 1,
        },
    ];
    let mut slot = 0i16;
    for (rs, rt) in [(1u8, 2u8), (2, 1), (1, 3), (3, 4), (2, 4)] {
        p.push(Instr::Add { rd: 10, rs, rt });
        p.push(store_sig(slot, 10));
        slot += 1;
        p.push(Instr::Sub { rd: 11, rs, rt });
        p.push(store_sig(slot, 11));
        slot += 1;
        p.push(Instr::And { rd: 12, rs, rt });
        p.push(store_sig(slot, 12));
        slot += 1;
        p.push(Instr::Or { rd: 13, rs, rt });
        p.push(store_sig(slot, 13));
        slot += 1;
        p.push(Instr::Xor { rd: 14, rs, rt });
        p.push(store_sig(slot, 14));
        slot += 1;
        p.push(Instr::Sltu { rd: 15, rs, rt });
        p.push(store_sig(slot, 15));
        slot += 1;
    }
    for shamt in [1u8, 4, 15, 31] {
        p.push(Instr::Sll {
            rd: 16,
            rt: 1,
            shamt,
        });
        p.push(store_sig(slot, 16));
        slot += 1;
        p.push(Instr::Srl {
            rd: 17,
            rt: 2,
            shamt,
        });
        p.push(store_sig(slot, 17));
        slot += 1;
    }
    p.push(Instr::Halt);
    SbstProgram::new("alu", p)
}

/// A register-file march: writes a register-unique pattern into every
/// register, then reads each back through the ALU and stores it.
pub fn regfile_march() -> SbstProgram {
    let mut p = Vec::new();
    // Phase 1: fill every register with a pattern derived from its index.
    for r in 1u8..32 {
        p.push(Instr::Lui {
            rt: r,
            imm: (0x0101u16).wrapping_mul(r as u16),
        });
        p.push(Instr::Ori {
            rt: r,
            rs: r,
            imm: (0x1010u16).wrapping_mul(r as u16) | r as u16,
        });
    }
    // Phase 2: read every register back and store it.
    for r in 1u8..32 {
        p.push(store_sig(r as i16 - 1, r));
    }
    // Phase 3: complement march — xor each register with all-ones and store.
    p.push(Instr::Lui { rt: 1, imm: 0xFFFF });
    p.push(Instr::Ori {
        rt: 1,
        rs: 1,
        imm: 0xFFFF,
    });
    for r in 2u8..32 {
        p.push(Instr::Xor {
            rd: r,
            rs: r,
            rt: 1,
        });
        p.push(store_sig(31 + r as i16 - 2, r));
    }
    p.push(Instr::Halt);
    SbstProgram::new("regfile", p)
}

/// A control-flow test: chains of taken and not-taken branches, jumps and a
/// call, accumulating an execution signature.
pub fn branch_test() -> SbstProgram {
    let p = vec![
        // 0: r1 = 0 (signature), r2 = loop counter
        Instr::Addi {
            rt: 1,
            rs: 0,
            imm: 0,
        },
        Instr::Addi {
            rt: 2,
            rs: 0,
            imm: 6,
        },
        // 2: loop: signature = signature * 2 + counter  (via shifts/adds)
        Instr::Sll {
            rd: 1,
            rt: 1,
            shamt: 1,
        },
        Instr::Add {
            rd: 1,
            rs: 1,
            rt: 2,
        },
        Instr::Addi {
            rt: 2,
            rs: 2,
            imm: -1,
        },
        Instr::Bne {
            rs: 2,
            rt: 0,
            imm: -4,
        },
        // 6: not-taken branch (r2 == 0 here, so bne falls through)
        Instr::Bne {
            rs: 2,
            rt: 0,
            imm: 10,
        },
        // 7: taken beq over a poison instruction
        Instr::Beq {
            rs: 2,
            rt: 0,
            imm: 1,
        },
        Instr::Addi {
            rt: 1,
            rs: 0,
            imm: 0x7FF,
        }, // must be skipped
        // 9: store intermediate signature
        store_sig(0, 1),
        // 10: call the subroutine at 14
        Instr::Jal { target: 14 },
        // 11: store the value produced by the subroutine and halt
        store_sig(1, 5),
        store_sig(2, 31),
        Instr::Halt,
        // 14: subroutine: r5 = r1 + 0x111, return via jump to 11
        Instr::Addi {
            rt: 5,
            rs: 1,
            imm: 0x111,
        },
        Instr::J { target: 11 },
    ];
    SbstProgram::new("branch", p)
}

/// A load/store test sweeping addresses across the data region.
pub fn memory_test() -> SbstProgram {
    let mut p = Vec::new();
    p.push(Instr::Lui { rt: 1, imm: 0xDEAD });
    p.push(Instr::Ori {
        rt: 1,
        rs: 1,
        imm: 0xBEEF,
    });
    p.push(Instr::Addi {
        rt: 2,
        rs: 0,
        imm: 0x600,
    });
    // Store the pattern at increasing strides, read each back, accumulate.
    for (slot, stride) in [0i16, 4, 8, 16, 32, 64, 128].into_iter().enumerate() {
        p.push(Instr::Sw {
            rt: 1,
            rs: 2,
            imm: stride,
        });
        p.push(Instr::Lw {
            rt: 3,
            rs: 2,
            imm: stride,
        });
        p.push(Instr::Add {
            rd: 4,
            rs: 4,
            rt: 3,
        });
        p.push(Instr::Xori {
            rt: 1,
            rs: 1,
            imm: 0x00FF,
        });
        p.push(store_sig(slot as i16, 4));
    }
    p.push(Instr::Halt);
    SbstProgram::new("memory", p)
}

/// The standard four-program suite used by the examples and benches.
pub fn standard_suite() -> Vec<SbstProgram> {
    vec![alu_test(), regfile_march(), branch_test(), memory_test()]
}

/// The result of converting an SBST program into gate-level stimuli.
#[derive(Clone, Debug)]
pub struct ProgramStimuli {
    /// One input vector per executed cycle.
    pub vectors: Vec<InputVector>,
    /// The ISS reference trace.
    pub trace: RunTrace,
}

/// Runs `program` on the ISS and converts the execution into per-cycle input
/// vectors for the gate-level core: each cycle applies the fetched
/// instruction word and the load data observed by the reference model, with
/// every test/debug input left at its mission (inactive) value.
pub fn program_stimuli(
    program: &SbstProgram,
    interface: &CoreInterface,
    max_cycles: usize,
) -> ProgramStimuli {
    let mut memory = Memory::new();
    memory.load_words(0, &program.words());
    let mut iss = Iss::new(memory, 0);
    let trace = iss.run(max_cycles);
    let mut vectors = Vec::with_capacity(trace.cycles.len());
    for cycle in &trace.cycles {
        let mut v = InputVector::new();
        v.insert(interface.clock, true);
        v.insert(interface.reset_n, true);
        for (i, &net) in interface.imem_rdata.iter().enumerate() {
            v.insert(net, (cycle.instruction >> i) & 1 == 1);
        }
        for (i, &net) in interface.dmem_rdata.iter().enumerate() {
            v.insert(net, (cycle.read_data >> i) & 1 == 1);
        }
        vectors.push(v);
    }
    ProgramStimuli { vectors, trace }
}

/// Convenience: stimuli for every program of a suite, concatenated in order
/// (each program starts again from the reset state of its own ISS run; the
/// gate-level simulation applies them back to back, which matches a test
/// scheduler that restarts the processor between SBST partitions).
pub fn suite_stimuli(
    suite: &[SbstProgram],
    interface: &CoreInterface,
    max_cycles_per_program: usize,
) -> Vec<ProgramStimuli> {
    suite
        .iter()
        .map(|p| program_stimuli(p, interface, max_cycles_per_program))
        .collect()
}

/// Grades `faults` against the stimuli of a full SBST suite on the compiled
/// packed fault simulator, observing only the given output ports (the system
/// bus during an on-line functional test). Each program restarts the core
/// from its reset state; faults detected by an earlier program are dropped
/// from the later programs' simulations, which is what makes grading a
/// mature multi-program suite cheap. Returns one detection flag per fault.
pub fn grade_suite(
    sim: &FaultSim<'_>,
    stimuli: &[ProgramStimuli],
    faults: &[StuckAt],
    observed_outputs: &[CellId],
) -> Vec<bool> {
    let batches: Vec<&[InputVector]> = stimuli.iter().map(|s| s.vectors.as_slice()).collect();
    sim.detect_batches(faults, &batches, observed_outputs)
}

/// Sanity statistics about a program's ISS execution.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProgramStats {
    /// Executed cycles.
    pub cycles: usize,
    /// Number of store transactions (signature size).
    pub stores: usize,
    /// Whether the program reached its `halt`.
    pub halted: bool,
}

/// Computes [`ProgramStats`] by running the program on the ISS.
pub fn program_stats(program: &SbstProgram, max_cycles: usize) -> ProgramStats {
    let mut memory = Memory::new();
    memory.load_words(0, &program.words());
    let mut iss = Iss::new(memory, 0);
    let trace = iss.run(max_cycles);
    ProgramStats {
        cycles: trace.cycles.len(),
        stores: trace.stores().len(),
        halted: trace.stop == StopReason::Halted,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_program_halts_and_produces_a_signature() {
        for program in standard_suite() {
            let stats = program_stats(&program, 2000);
            assert!(stats.halted, "{} did not halt", program.name);
            assert!(
                stats.stores >= 3,
                "{} produced only {} signature stores",
                program.name,
                stats.stores
            );
            assert!(stats.cycles < 1500, "{} is too long", program.name);
        }
    }

    #[test]
    fn branch_test_skips_the_poison_instruction() {
        let program = branch_test();
        let mut memory = Memory::new();
        memory.load_words(0, &program.words());
        let mut iss = Iss::new(memory, 0);
        let trace = iss.run(500);
        // The poison value 0x7FF must never be stored as the signature.
        assert!(trace.stores().iter().all(|&(_, v)| v != 0x7FF));
        // The loop signature: s = ((((0*2+6)*2+5)*2+4)...)*2+1.
        let mut expected = 0u32;
        for k in (1..=6).rev() {
            expected = expected * 2 + k;
        }
        assert_eq!(trace.stores()[0].1, expected);
        // The subroutine result and the link register were stored.
        assert_eq!(trace.stores()[1].1, expected + 0x111);
        assert_eq!(trace.stores()[2].1, 11 * 4);
    }

    #[test]
    fn regfile_march_signature_is_register_unique() {
        let program = regfile_march();
        let mut memory = Memory::new();
        memory.load_words(0, &program.words());
        let mut iss = Iss::new(memory, 0);
        let trace = iss.run(2000);
        let stores = trace.stores();
        // The first 31 stores are the register patterns; all distinct.
        let mut values: Vec<u32> = stores[..31].iter().map(|&(_, v)| v).collect();
        values.sort_unstable();
        values.dedup();
        assert_eq!(values.len(), 31);
    }

    #[test]
    fn stimuli_match_trace_length_and_mission_defaults() {
        let mut b = netlist::NetlistBuilder::new("core");
        let iface = crate::core_gen::generate_core(&mut b, &crate::core_gen::CoreConfig::small());
        let program = alu_test();
        let stim = program_stimuli(&program, &iface, 1000);
        assert_eq!(stim.vectors.len(), stim.trace.cycles.len());
        // Only functional inputs are driven; debug/scan inputs are absent
        // (and therefore default to their inactive value 0).
        for v in &stim.vectors {
            assert!(v.contains_key(&iface.clock));
            assert!(v.contains_key(&iface.imem_rdata[0]));
        }
    }

    #[test]
    fn memory_test_accumulates_loads() {
        let stats = program_stats(&memory_test(), 500);
        assert!(stats.halted);
        assert_eq!(stats.stores, 7 + 7, "7 pattern stores + 7 signature stores");
    }

    #[test]
    fn grade_suite_agrees_with_per_program_grading() {
        let mut b = netlist::NetlistBuilder::new("core");
        let iface = crate::core_gen::generate_core(&mut b, &crate::core_gen::CoreConfig::small());
        let netlist = b.finish();
        let sim = FaultSim::new(&netlist).unwrap();
        let stimuli = suite_stimuli(&standard_suite(), &iface, 300);
        let faults: Vec<StuckAt> = faultmodel::FaultList::full_universe(&netlist)
            .faults()
            .iter()
            .copied()
            .step_by(97)
            .take(70)
            .collect();
        let graded = grade_suite(&sim, &stimuli, &faults, &iface.bus_output_ports);
        // Reference: one full pass per program, OR-ed — dropping detected
        // faults between programs must not change the outcome.
        let mut reference = vec![false; faults.len()];
        for stim in &stimuli {
            let hits = sim.detect_at(&faults, &stim.vectors, &iface.bus_output_ports);
            for (r, h) in reference.iter_mut().zip(hits) {
                *r |= h;
            }
        }
        assert_eq!(graded, reference);
        assert!(graded.iter().any(|&d| d), "suite should detect something");
    }

    #[test]
    fn suite_stimuli_covers_all_programs() {
        let mut b = netlist::NetlistBuilder::new("core");
        let iface = crate::core_gen::generate_core(&mut b, &crate::core_gen::CoreConfig::small());
        let all = suite_stimuli(&standard_suite(), &iface, 2000);
        assert_eq!(all.len(), 4);
        assert!(all.iter().all(|s| !s.vectors.is_empty()));
    }
}
