//! The `mini32` instruction set: a small MIPS-like 32-bit RISC ISA used both
//! by the instruction-set simulator and by the gate-level core generator.
//!
//! The ISA is deliberately conventional — the paper's case study uses a
//! Power-architecture e200z0; any 32-bit embedded RISC with an address
//! generation unit, a branch unit and a general-purpose register file
//! exercises the same untestability mechanisms.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A register index (0..=31). Register 0 always reads as zero.
pub type Reg = u8;

/// One `mini32` instruction.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Instr {
    /// No operation (encoded as `sll r0, r0, 0`).
    Nop,
    /// `rd = rs + rt`
    Add {
        /// Destination register.
        rd: Reg,
        /// First source register.
        rs: Reg,
        /// Second source register.
        rt: Reg,
    },
    /// `rd = rs - rt`
    Sub {
        /// Destination register.
        rd: Reg,
        /// First source register.
        rs: Reg,
        /// Second source register.
        rt: Reg,
    },
    /// `rd = rs & rt`
    And {
        /// Destination register.
        rd: Reg,
        /// First source register.
        rs: Reg,
        /// Second source register.
        rt: Reg,
    },
    /// `rd = rs | rt`
    Or {
        /// Destination register.
        rd: Reg,
        /// First source register.
        rs: Reg,
        /// Second source register.
        rt: Reg,
    },
    /// `rd = rs ^ rt`
    Xor {
        /// Destination register.
        rd: Reg,
        /// First source register.
        rs: Reg,
        /// Second source register.
        rt: Reg,
    },
    /// `rd = (rs < rt) ? 1 : 0` (unsigned compare)
    Sltu {
        /// Destination register.
        rd: Reg,
        /// First source register.
        rs: Reg,
        /// Second source register.
        rt: Reg,
    },
    /// `rd = rt << shamt`
    Sll {
        /// Destination register.
        rd: Reg,
        /// Source register.
        rt: Reg,
        /// Shift amount (0..=31).
        shamt: u8,
    },
    /// `rd = rt >> shamt` (logical)
    Srl {
        /// Destination register.
        rd: Reg,
        /// Source register.
        rt: Reg,
        /// Shift amount (0..=31).
        shamt: u8,
    },
    /// `rt = rs + sign_extend(imm)`
    Addi {
        /// Destination register.
        rt: Reg,
        /// Source register.
        rs: Reg,
        /// Signed 16-bit immediate.
        imm: i16,
    },
    /// `rt = rs & zero_extend(imm)`
    Andi {
        /// Destination register.
        rt: Reg,
        /// Source register.
        rs: Reg,
        /// Unsigned 16-bit immediate.
        imm: u16,
    },
    /// `rt = rs | zero_extend(imm)`
    Ori {
        /// Destination register.
        rt: Reg,
        /// Source register.
        rs: Reg,
        /// Unsigned 16-bit immediate.
        imm: u16,
    },
    /// `rt = rs ^ zero_extend(imm)`
    Xori {
        /// Destination register.
        rt: Reg,
        /// Source register.
        rs: Reg,
        /// Unsigned 16-bit immediate.
        imm: u16,
    },
    /// `rt = imm << 16`
    Lui {
        /// Destination register.
        rt: Reg,
        /// Upper immediate.
        imm: u16,
    },
    /// `rt = mem[rs + sign_extend(imm)]`
    Lw {
        /// Destination register.
        rt: Reg,
        /// Base register.
        rs: Reg,
        /// Signed byte offset.
        imm: i16,
    },
    /// `mem[rs + sign_extend(imm)] = rt`
    Sw {
        /// Source register (value stored).
        rt: Reg,
        /// Base register.
        rs: Reg,
        /// Signed byte offset.
        imm: i16,
    },
    /// Branch to `pc + 4 + (sign_extend(imm) << 2)` when `rs == rt`.
    Beq {
        /// First compared register.
        rs: Reg,
        /// Second compared register.
        rt: Reg,
        /// Signed word offset.
        imm: i16,
    },
    /// Branch to `pc + 4 + (sign_extend(imm) << 2)` when `rs != rt`.
    Bne {
        /// First compared register.
        rs: Reg,
        /// Second compared register.
        rt: Reg,
        /// Signed word offset.
        imm: i16,
    },
    /// Unconditional jump to `{(pc+4)[31:28], target, 00}`.
    J {
        /// 26-bit word target.
        target: u32,
    },
    /// Jump-and-link: `r31 = pc + 4`, then jump.
    Jal {
        /// 26-bit word target.
        target: u32,
    },
    /// Stop the processor (custom opcode 0x3F); the PC holds its value.
    Halt,
}

/// Error returned when decoding an instruction word fails.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct DecodeError {
    /// The word that could not be decoded.
    pub word: u32,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cannot decode instruction word {:#010x}", self.word)
    }
}

impl std::error::Error for DecodeError {}

const OP_RTYPE: u32 = 0x00;
const OP_BEQ: u32 = 0x04;
const OP_BNE: u32 = 0x05;
const OP_ADDI: u32 = 0x08;
const OP_ANDI: u32 = 0x0c;
const OP_ORI: u32 = 0x0d;
const OP_XORI: u32 = 0x0e;
const OP_LUI: u32 = 0x0f;
const OP_LW: u32 = 0x23;
const OP_SW: u32 = 0x2b;
const OP_J: u32 = 0x02;
const OP_JAL: u32 = 0x03;
const OP_HALT: u32 = 0x3f;

const FN_SLL: u32 = 0x00;
const FN_SRL: u32 = 0x02;
const FN_ADD: u32 = 0x20;
const FN_SUB: u32 = 0x22;
const FN_AND: u32 = 0x24;
const FN_OR: u32 = 0x25;
const FN_XOR: u32 = 0x26;
const FN_SLTU: u32 = 0x2b;

fn r(op: u32, rs: Reg, rt: Reg, rd: Reg, shamt: u8, funct: u32) -> u32 {
    (op << 26)
        | ((rs as u32 & 0x1f) << 21)
        | ((rt as u32 & 0x1f) << 16)
        | ((rd as u32 & 0x1f) << 11)
        | ((shamt as u32 & 0x1f) << 6)
        | (funct & 0x3f)
}

fn i(op: u32, rs: Reg, rt: Reg, imm: u16) -> u32 {
    (op << 26) | ((rs as u32 & 0x1f) << 21) | ((rt as u32 & 0x1f) << 16) | imm as u32
}

impl Instr {
    /// Encodes the instruction into its 32-bit machine word.
    pub fn encode(self) -> u32 {
        match self {
            Instr::Nop => 0,
            Instr::Add { rd, rs, rt } => r(OP_RTYPE, rs, rt, rd, 0, FN_ADD),
            Instr::Sub { rd, rs, rt } => r(OP_RTYPE, rs, rt, rd, 0, FN_SUB),
            Instr::And { rd, rs, rt } => r(OP_RTYPE, rs, rt, rd, 0, FN_AND),
            Instr::Or { rd, rs, rt } => r(OP_RTYPE, rs, rt, rd, 0, FN_OR),
            Instr::Xor { rd, rs, rt } => r(OP_RTYPE, rs, rt, rd, 0, FN_XOR),
            Instr::Sltu { rd, rs, rt } => r(OP_RTYPE, rs, rt, rd, 0, FN_SLTU),
            Instr::Sll { rd, rt, shamt } => r(OP_RTYPE, 0, rt, rd, shamt, FN_SLL),
            Instr::Srl { rd, rt, shamt } => r(OP_RTYPE, 0, rt, rd, shamt, FN_SRL),
            Instr::Addi { rt, rs, imm } => i(OP_ADDI, rs, rt, imm as u16),
            Instr::Andi { rt, rs, imm } => i(OP_ANDI, rs, rt, imm),
            Instr::Ori { rt, rs, imm } => i(OP_ORI, rs, rt, imm),
            Instr::Xori { rt, rs, imm } => i(OP_XORI, rs, rt, imm),
            Instr::Lui { rt, imm } => i(OP_LUI, 0, rt, imm),
            Instr::Lw { rt, rs, imm } => i(OP_LW, rs, rt, imm as u16),
            Instr::Sw { rt, rs, imm } => i(OP_SW, rs, rt, imm as u16),
            Instr::Beq { rs, rt, imm } => i(OP_BEQ, rs, rt, imm as u16),
            Instr::Bne { rs, rt, imm } => i(OP_BNE, rs, rt, imm as u16),
            Instr::J { target } => (OP_J << 26) | (target & 0x03ff_ffff),
            Instr::Jal { target } => (OP_JAL << 26) | (target & 0x03ff_ffff),
            Instr::Halt => OP_HALT << 26,
        }
    }

    /// Decodes a 32-bit machine word.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError`] for opcodes or function codes outside the ISA.
    pub fn decode(word: u32) -> Result<Instr, DecodeError> {
        let op = word >> 26;
        let rs = ((word >> 21) & 0x1f) as Reg;
        let rt = ((word >> 16) & 0x1f) as Reg;
        let rd = ((word >> 11) & 0x1f) as Reg;
        let shamt = ((word >> 6) & 0x1f) as u8;
        let funct = word & 0x3f;
        let imm = (word & 0xffff) as u16;
        let simm = imm as i16;
        Ok(match op {
            OP_RTYPE => match funct {
                FN_SLL => {
                    if word == 0 {
                        Instr::Nop
                    } else {
                        Instr::Sll { rd, rt, shamt }
                    }
                }
                FN_SRL => Instr::Srl { rd, rt, shamt },
                FN_ADD => Instr::Add { rd, rs, rt },
                FN_SUB => Instr::Sub { rd, rs, rt },
                FN_AND => Instr::And { rd, rs, rt },
                FN_OR => Instr::Or { rd, rs, rt },
                FN_XOR => Instr::Xor { rd, rs, rt },
                FN_SLTU => Instr::Sltu { rd, rs, rt },
                _ => return Err(DecodeError { word }),
            },
            OP_ADDI => Instr::Addi { rt, rs, imm: simm },
            OP_ANDI => Instr::Andi { rt, rs, imm },
            OP_ORI => Instr::Ori { rt, rs, imm },
            OP_XORI => Instr::Xori { rt, rs, imm },
            OP_LUI => Instr::Lui { rt, imm },
            OP_LW => Instr::Lw { rt, rs, imm: simm },
            OP_SW => Instr::Sw { rt, rs, imm: simm },
            OP_BEQ => Instr::Beq { rs, rt, imm: simm },
            OP_BNE => Instr::Bne { rs, rt, imm: simm },
            OP_J => Instr::J {
                target: word & 0x03ff_ffff,
            },
            OP_JAL => Instr::Jal {
                target: word & 0x03ff_ffff,
            },
            OP_HALT => Instr::Halt,
            _ => return Err(DecodeError { word }),
        })
    }

    /// Assembles a program (a slice of instructions) into machine words.
    pub fn assemble(program: &[Instr]) -> Vec<u32> {
        program.iter().map(|&instr| instr.encode()).collect()
    }
}

/// Instruction-field constants shared with the gate-level decoder generator.
pub mod fields {
    /// R-type opcode.
    pub const OP_RTYPE: u32 = super::OP_RTYPE;
    /// `beq` opcode.
    pub const OP_BEQ: u32 = super::OP_BEQ;
    /// `bne` opcode.
    pub const OP_BNE: u32 = super::OP_BNE;
    /// `addi` opcode.
    pub const OP_ADDI: u32 = super::OP_ADDI;
    /// `andi` opcode.
    pub const OP_ANDI: u32 = super::OP_ANDI;
    /// `ori` opcode.
    pub const OP_ORI: u32 = super::OP_ORI;
    /// `xori` opcode.
    pub const OP_XORI: u32 = super::OP_XORI;
    /// `lui` opcode.
    pub const OP_LUI: u32 = super::OP_LUI;
    /// `lw` opcode.
    pub const OP_LW: u32 = super::OP_LW;
    /// `sw` opcode.
    pub const OP_SW: u32 = super::OP_SW;
    /// `j` opcode.
    pub const OP_J: u32 = super::OP_J;
    /// `jal` opcode.
    pub const OP_JAL: u32 = super::OP_JAL;
    /// `halt` opcode.
    pub const OP_HALT: u32 = super::OP_HALT;
    /// `sll` function code.
    pub const FN_SLL: u32 = super::FN_SLL;
    /// `srl` function code.
    pub const FN_SRL: u32 = super::FN_SRL;
    /// `add` function code.
    pub const FN_ADD: u32 = super::FN_ADD;
    /// `sub` function code.
    pub const FN_SUB: u32 = super::FN_SUB;
    /// `and` function code.
    pub const FN_AND: u32 = super::FN_AND;
    /// `or` function code.
    pub const FN_OR: u32 = super::FN_OR;
    /// `xor` function code.
    pub const FN_XOR: u32 = super::FN_XOR;
    /// `sltu` function code.
    pub const FN_SLTU: u32 = super::FN_SLTU;
}

impl fmt::Display for Instr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Instr::Nop => write!(f, "nop"),
            Instr::Add { rd, rs, rt } => write!(f, "add r{rd}, r{rs}, r{rt}"),
            Instr::Sub { rd, rs, rt } => write!(f, "sub r{rd}, r{rs}, r{rt}"),
            Instr::And { rd, rs, rt } => write!(f, "and r{rd}, r{rs}, r{rt}"),
            Instr::Or { rd, rs, rt } => write!(f, "or r{rd}, r{rs}, r{rt}"),
            Instr::Xor { rd, rs, rt } => write!(f, "xor r{rd}, r{rs}, r{rt}"),
            Instr::Sltu { rd, rs, rt } => write!(f, "sltu r{rd}, r{rs}, r{rt}"),
            Instr::Sll { rd, rt, shamt } => write!(f, "sll r{rd}, r{rt}, {shamt}"),
            Instr::Srl { rd, rt, shamt } => write!(f, "srl r{rd}, r{rt}, {shamt}"),
            Instr::Addi { rt, rs, imm } => write!(f, "addi r{rt}, r{rs}, {imm}"),
            Instr::Andi { rt, rs, imm } => write!(f, "andi r{rt}, r{rs}, {imm:#x}"),
            Instr::Ori { rt, rs, imm } => write!(f, "ori r{rt}, r{rs}, {imm:#x}"),
            Instr::Xori { rt, rs, imm } => write!(f, "xori r{rt}, r{rs}, {imm:#x}"),
            Instr::Lui { rt, imm } => write!(f, "lui r{rt}, {imm:#x}"),
            Instr::Lw { rt, rs, imm } => write!(f, "lw r{rt}, {imm}(r{rs})"),
            Instr::Sw { rt, rs, imm } => write!(f, "sw r{rt}, {imm}(r{rs})"),
            Instr::Beq { rs, rt, imm } => write!(f, "beq r{rs}, r{rt}, {imm}"),
            Instr::Bne { rs, rt, imm } => write!(f, "bne r{rs}, r{rt}, {imm}"),
            Instr::J { target } => write!(f, "j {target:#x}"),
            Instr::Jal { target } => write!(f, "jal {target:#x}"),
            Instr::Halt => write!(f, "halt"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_instructions() -> Vec<Instr> {
        vec![
            Instr::Nop,
            Instr::Add {
                rd: 1,
                rs: 2,
                rt: 3,
            },
            Instr::Sub {
                rd: 31,
                rs: 30,
                rt: 29,
            },
            Instr::And {
                rd: 4,
                rs: 5,
                rt: 6,
            },
            Instr::Or {
                rd: 7,
                rs: 8,
                rt: 9,
            },
            Instr::Xor {
                rd: 10,
                rs: 11,
                rt: 12,
            },
            Instr::Sltu {
                rd: 13,
                rs: 14,
                rt: 15,
            },
            Instr::Sll {
                rd: 1,
                rt: 2,
                shamt: 31,
            },
            Instr::Srl {
                rd: 3,
                rt: 4,
                shamt: 1,
            },
            Instr::Addi {
                rt: 5,
                rs: 6,
                imm: -42,
            },
            Instr::Andi {
                rt: 7,
                rs: 8,
                imm: 0xffff,
            },
            Instr::Ori {
                rt: 9,
                rs: 10,
                imm: 0x1234,
            },
            Instr::Xori {
                rt: 11,
                rs: 12,
                imm: 0x00ff,
            },
            Instr::Lui {
                rt: 13,
                imm: 0x4000,
            },
            Instr::Lw {
                rt: 14,
                rs: 15,
                imm: 16,
            },
            Instr::Sw {
                rt: 16,
                rs: 17,
                imm: -4,
            },
            Instr::Beq {
                rs: 18,
                rt: 19,
                imm: 5,
            },
            Instr::Bne {
                rs: 20,
                rt: 21,
                imm: -5,
            },
            Instr::J { target: 0x12345 },
            Instr::Jal { target: 0x3ffffff },
            Instr::Halt,
        ]
    }

    #[test]
    fn encode_decode_roundtrip() {
        for instr in sample_instructions() {
            let word = instr.encode();
            let decoded = Instr::decode(word).unwrap();
            assert_eq!(decoded, instr, "word {word:#010x}");
        }
    }

    #[test]
    fn nop_encodes_to_zero() {
        assert_eq!(Instr::Nop.encode(), 0);
        assert_eq!(Instr::decode(0).unwrap(), Instr::Nop);
    }

    #[test]
    fn unknown_opcode_is_an_error() {
        // Opcode 0x3e is not defined.
        let err = Instr::decode(0x3e << 26).unwrap_err();
        assert_eq!(err.word, 0x3e << 26);
        assert!(err.to_string().contains("cannot decode"));
        // Unknown funct in R-type.
        assert!(Instr::decode(0x0000_003f).is_err());
    }

    #[test]
    fn field_masks_are_respected() {
        let word = Instr::Add {
            rd: 63,
            rs: 63,
            rt: 63,
        }
        .encode();
        // Register fields are 5 bits: 63 wraps to 31.
        assert_eq!(
            Instr::decode(word).unwrap(),
            Instr::Add {
                rd: 31,
                rs: 31,
                rt: 31
            }
        );
        let j = Instr::J { target: u32::MAX }.encode();
        assert_eq!(
            Instr::decode(j).unwrap(),
            Instr::J {
                target: 0x03ff_ffff
            }
        );
    }

    #[test]
    fn assemble_produces_one_word_per_instruction() {
        let program = sample_instructions();
        let words = Instr::assemble(&program);
        assert_eq!(words.len(), program.len());
        assert_eq!(words[0], 0);
    }

    #[test]
    fn display_is_readable() {
        assert_eq!(
            Instr::Add {
                rd: 1,
                rs: 2,
                rt: 3
            }
            .to_string(),
            "add r1, r2, r3"
        );
        assert_eq!(
            Instr::Lw {
                rt: 4,
                rs: 5,
                imm: -8
            }
            .to_string(),
            "lw r4, -8(r5)"
        );
        assert_eq!(Instr::Halt.to_string(), "halt");
    }

    #[test]
    fn negative_immediates_roundtrip() {
        for imm in [-1i16, -32768, 32767, 0, 1] {
            let instr = Instr::Addi { rt: 1, rs: 2, imm };
            assert_eq!(Instr::decode(instr.encode()).unwrap(), instr);
        }
    }
}
