//! Frontend hardening: truncated and byte-mutated netlist sources, in every
//! supported format, fed through [`parse_netlist`] — possibly under the
//! *wrong* format. Every outcome must be a parsed netlist or a positioned
//! [`ParseError`]; the parsers must never panic.
//!
//! The mutation engine works on bytes (so multi-byte UTF-8 sequences get
//! torn apart too) and repairs the result with `from_utf8_lossy`, which is
//! exactly what a driver reading a corrupted file would hand the parser.

use netlist::frontend::{parse_netlist, Format, ParseError};
use netlist::Netlist;
use proptest::prelude::*;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// A well-formed `.bench` source (sequential, with comments and DFFs).
const BENCH_SEED: &str = "\
# s27-style sequential sample
INPUT(G0)
INPUT(G1)
OUTPUT(G17)
G5 = DFF(G10)
G14 = NOT(G0)
G17 = NOT(G11)
G8 = AND(G14, G5)
G10 = NOR(G14, G11)
G11 = NOR(G1, G8)
";

/// A well-formed structural Verilog source (escaped identifier included).
const VERILOG_SEED: &str = "\
module sample (a, b, ck, \\1odd$name , y);
  input a, b, ck;
  input \\1odd$name ;
  output y;
  wire x, q;
  XOR2 u0 (.A0(a), .A1(b), .Y(x));
  DFF r0 (.D(x), .CK(ck), .Q(q));
  AND2 u1 (.A0(q), .A1(\\1odd$name ), .Y(y));
endmodule
";

/// A well-formed EDIF 2.0.0 subset source.
const EDIF_SEED: &str = "\
(edif sample_design
  (edifVersion 2 0 0)
  (library work
    (cell AND2 (cellType GENERIC)
      (view netlist (viewType NETLIST)
        (interface (port A0 (direction INPUT))
                   (port A1 (direction INPUT))
                   (port Y (direction OUTPUT)))))
    (cell sample (cellType GENERIC)
      (view netlist (viewType NETLIST)
        (interface (port a (direction INPUT))
                   (port b (direction INPUT))
                   (port y (direction OUTPUT)))
        (contents
          (instance u0 (viewRef netlist (cellRef AND2 (libraryRef work))))
          (net n_a (joined (portRef a) (portRef A0 (instanceRef u0))))
          (net n_b (joined (portRef b) (portRef A1 (instanceRef u0))))
          (net n_y (joined (portRef Y (instanceRef u0)) (portRef y)))))))
  (design sample (cellRef sample (libraryRef work))))
";

const SEEDS: [&str; 3] = [BENCH_SEED, VERILOG_SEED, EDIF_SEED];

/// Parses under a panic guard. `Err(_)` from the guard is the property
/// violation we are hunting: a parser panic instead of a `ParseError`.
fn parse_guarded(text: &str, format: Format) -> Result<Result<Netlist, ParseError>, String> {
    catch_unwind(AssertUnwindSafe(|| parse_netlist(text, format))).map_err(|panic| {
        let message = panic
            .downcast_ref::<&str>()
            .map(|s| (*s).to_string())
            .or_else(|| panic.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "non-string panic payload".to_string());
        format!("parser panicked under {format}: {message}")
    })
}

/// Checks the hardening contract on one input: no panic, and any error is
/// positioned (1-based line/column) with a non-empty message.
fn assert_contract(text: &str, format: Format) -> Result<(), TestCaseError> {
    match parse_guarded(text, format) {
        Ok(Ok(_)) => Ok(()),
        Ok(Err(e)) => {
            prop_assert!(
                e.line >= 1 && e.column >= 1,
                "unpositioned error under {format}: {e:?}"
            );
            prop_assert!(
                !e.message.is_empty(),
                "empty error message under {format}: {e:?}"
            );
            Ok(())
        }
        Err(panic) => Err(TestCaseError::fail(format!("{panic}\ninput:\n{text}"))),
    }
}

/// One byte-level mutation step, decoded from three sampled integers.
fn mutate(bytes: &mut Vec<u8>, op: u8, position: usize, payload: u8) {
    if bytes.is_empty() {
        bytes.push(payload);
        return;
    }
    let at = position % bytes.len();
    match op % 5 {
        // Truncate: the classic torn-file shape.
        0 => bytes.truncate(at),
        // Overwrite one byte with arbitrary garbage.
        1 => bytes[at] = payload,
        // Insert one arbitrary byte.
        2 => bytes.insert(at, payload),
        // Delete a short run.
        3 => {
            let end = (at + 1 + payload as usize % 8).min(bytes.len());
            bytes.drain(at..end);
        }
        // Duplicate a short run (repeated tokens, doubled lines).
        _ => {
            let end = (at + 1 + payload as usize % 16).min(bytes.len());
            let run: Vec<u8> = bytes[at..end].to_vec();
            bytes.splice(at..at, run);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Randomly mutated sources parse or fail cleanly under every frontend
    /// (including deliberate format mismatches). Each sampled word packs one
    /// mutation step: op in the low byte, position in the middle, payload on
    /// top (the stub strategy set has no tuple support).
    #[test]
    fn mutated_sources_never_panic_any_frontend(
        seed in 0usize..3,
        steps in prop::collection::vec(any::<u64>(), 1..8),
        format_index in 0usize..3,
    ) {
        let mut bytes = SEEDS[seed].as_bytes().to_vec();
        for &word in &steps {
            let op = (word & 0xff) as u8;
            let position = ((word >> 8) & 0xffff) as usize;
            let payload = ((word >> 24) & 0xff) as u8;
            mutate(&mut bytes, op, position, payload);
        }
        let text = String::from_utf8_lossy(&bytes).into_owned();
        assert_contract(&text, Format::ALL[format_index])?;
    }
}

/// Every byte-boundary truncation of every seed, parsed under every
/// frontend: the exhaustive version of the torn-file case.
#[test]
fn every_truncation_of_every_seed_parses_or_errors_cleanly() {
    for seed in SEEDS {
        for cut in 0..=seed.len() {
            if !seed.is_char_boundary(cut) {
                continue;
            }
            for format in Format::ALL {
                if let Err(panic) = assert_contract(&seed[..cut], format) {
                    panic!("truncation at byte {cut}: {panic}");
                }
            }
        }
    }
}

/// The seeds themselves are valid under their native format — otherwise the
/// mutation campaign starts from garbage and exercises nothing deep.
#[test]
fn seeds_parse_under_their_native_format() {
    for (seed, format) in [
        (BENCH_SEED, Format::Bench),
        (VERILOG_SEED, Format::Verilog),
        (EDIF_SEED, Format::Edif),
    ] {
        parse_netlist(seed, format)
            .unwrap_or_else(|e| panic!("seed for {format} does not parse: {e}"));
    }
}
