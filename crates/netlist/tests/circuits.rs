//! Guards the committed circuits under `circuits/`: every file must parse
//! and validate through the frontend it is named for, and the synthetic
//! scale-matched circuits must match their in-tree generator bit for bit
//! (regenerate with `BLESS_CIRCUITS=1 cargo test -p netlist --test circuits`).

use netlist::frontend::{bench, load_netlist, Format};
use netlist::stats::stats;
use netlist::{NetId, Netlist, NetlistBuilder};
use std::path::{Path, PathBuf};

fn circuits_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../circuits")
}

// ---------------------------------------------------------------------------
// Deterministic synthetic circuit generator
// ---------------------------------------------------------------------------

/// splitmix64, the same generator the proof-stage sampling uses — no RNG
/// dependency, stable across platforms.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Generates a deterministic random combinational circuit at a requested
/// scale. The container that grows this repository is offline, so the
/// original ISCAS-85 c432/c880/c1355 netlists cannot be fetched; these
/// stand-ins match their port counts and rough gate counts and exercise the
/// same frontend/pipeline machinery. Every generated gate is folded into an
/// output cone, so nothing is trivially unobservable.
fn synth_circuit(
    name: &str,
    inputs: usize,
    outputs: usize,
    base_gates: usize,
    seed: u64,
) -> Netlist {
    let mut b = NetlistBuilder::new(name);
    let mut pool: Vec<NetId> = (0..inputs).map(|i| b.input(format!("in{i}"))).collect();
    let mut rng = seed;
    for g in 0..base_gates {
        let a = pool[(splitmix64(&mut rng) % pool.len() as u64) as usize];
        let c = pool[(splitmix64(&mut rng) % pool.len() as u64) as usize];
        let y = match g % 6 {
            0 => b.and2(a, c),
            1 => b.nand2(a, c),
            2 => b.or2(a, c),
            3 => b.nor2(a, c),
            4 => b.xor2(a, c),
            _ => b.not(a),
        };
        pool.push(y);
    }
    // Fold every dangling net into one of the outputs, round-robin, so the
    // whole circuit is observable.
    let heads: Vec<NetId> = pool
        .iter()
        .copied()
        .filter(|&n| b.netlist().loads_of(n).is_empty())
        .collect();
    let mut buckets: Vec<Vec<NetId>> = vec![Vec::new(); outputs];
    for (i, head) in heads.into_iter().enumerate() {
        buckets[i % outputs].push(head);
    }
    for (i, bucket) in buckets.into_iter().enumerate() {
        let src = match bucket.len() {
            0 => pool[i % pool.len()],
            1 => bucket[0],
            _ => b.xor(&bucket),
        };
        // Drive each primary output through a buffer onto a net carrying the
        // port's name — the `.bench` format names outputs by net, so this
        // keeps `OUTPUT(outN)` stable for constraint specs and docs.
        let named = b.netlist_mut().add_net(format!("out{i}"));
        b.netlist_mut().add_cell(
            netlist::CellKind::Buf,
            format!("u_out{i}"),
            &[src],
            Some(named),
        );
        b.output(format!("out{i}"), named);
    }
    b.finish()
}

/// name, inputs, outputs, base gates, seed — port counts match the classic
/// ISCAS-85 circuits they stand in for.
const SYNTH: [(&str, usize, usize, usize, u64); 3] = [
    ("synth_c432", 36, 7, 145, 0x0432),
    ("synth_c880", 60, 26, 340, 0x0880),
    ("synth_c1355", 41, 32, 490, 0x1355),
];

#[test]
fn synthetic_circuits_match_their_generator() {
    let bless = std::env::var_os("BLESS_CIRCUITS").is_some();
    for (name, inputs, outputs, base_gates, seed) in SYNTH {
        let netlist = synth_circuit(name, inputs, outputs, base_gates, seed);
        let text = bench::write_bench(&netlist).expect("synthetic circuits are bench-expressible");
        let path = circuits_dir().join(format!("{name}.bench"));
        if bless {
            std::fs::write(&path, &text).expect("write blessed circuit");
            continue;
        }
        let committed = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("missing committed circuit {}: {e}", path.display()));
        assert_eq!(
            committed, text,
            "{name}.bench drifted from its generator; \
             regenerate with BLESS_CIRCUITS=1 if intentional"
        );
    }
}

#[test]
fn every_committed_circuit_loads_and_validates() {
    let dir = circuits_dir();
    let mut seen = 0usize;
    for entry in std::fs::read_dir(&dir).expect("circuits/ exists") {
        let path = entry.unwrap().path();
        let Some(format) = Format::from_path(&path) else {
            continue; // README, constraint specs
        };
        let netlist = load_netlist(&path, Some(format))
            .unwrap_or_else(|e| panic!("{} does not load: {e}", path.display()));
        let s = stats(&netlist);
        assert!(s.primary_inputs > 0, "{}", path.display());
        assert!(s.primary_outputs > 0, "{}", path.display());
        seen += 1;
    }
    assert!(seen >= 6, "expected at least 6 circuit files, found {seen}");
}

#[test]
fn committed_circuits_have_the_advertised_scale() {
    let c17 = load_netlist(circuits_dir().join("c17.bench"), None).unwrap();
    let s = stats(&c17);
    assert_eq!((s.primary_inputs, s.primary_outputs), (5, 2));
    assert_eq!(s.combinational_cells, 6);

    let s27 = load_netlist(circuits_dir().join("s27.bench"), None).unwrap();
    let s = stats(&s27);
    assert_eq!(s.flip_flops, 3);
    assert_eq!(s.combinational_cells, 10);

    for (name, inputs, outputs, base_gates, _) in SYNTH {
        let n = load_netlist(circuits_dir().join(format!("{name}.bench")), None).unwrap();
        let s = stats(&n);
        assert_eq!(s.primary_inputs, inputs, "{name}");
        assert_eq!(s.primary_outputs, outputs, "{name}");
        assert!(s.combinational_cells >= base_gates, "{name}");
    }
}
