//! Property-based tests on the netlist data structures, the word-level
//! builder helpers, and the netlist frontends (Verilog and `.bench`
//! round-trips).

use netlist::frontend::bench;
use netlist::{graph, stats::stats, verilog, CellKind, NetId, Netlist, NetlistBuilder};
use proptest::prelude::*;
use std::collections::{BTreeSet, HashMap};

/// Recursive two-valued evaluation used as a reference model in properties.
fn eval(netlist: &Netlist, env: &HashMap<NetId, bool>, net: NetId) -> bool {
    if let Some(&v) = env.get(&net) {
        return v;
    }
    let driver = netlist.driver_of(net).expect("floating net");
    let cell = netlist.cell(driver);
    let inputs: Vec<bool> = cell
        .inputs()
        .iter()
        .map(|&n| eval(netlist, env, n))
        .collect();
    cell.kind().eval_bool(&inputs).expect("sequential in eval")
}

fn word_value(netlist: &Netlist, env: &HashMap<NetId, bool>, word: &[NetId]) -> u64 {
    word.iter()
        .enumerate()
        .map(|(i, &n)| (eval(netlist, env, n) as u64) << i)
        .sum()
}

fn assign(word: &[NetId], value: u64, env: &mut HashMap<NetId, bool>) {
    for (i, &n) in word.iter().enumerate() {
        env.insert(n, (value >> i) & 1 == 1);
    }
}

proptest! {
    #[test]
    fn adder_matches_integer_addition(a in 0u64..=0xffff, b in 0u64..=0xffff, cin in 0u64..=1) {
        let mut builder = NetlistBuilder::new("padd");
        let aw = builder.input_bus("a", 16);
        let bw = builder.input_bus("b", 16);
        let ci = builder.input("cin");
        let (sum, cout) = builder.ripple_adder(&aw, &bw, ci);
        let n = builder.finish();
        let mut env = HashMap::new();
        assign(&aw, a, &mut env);
        assign(&bw, b, &mut env);
        env.insert(ci, cin == 1);
        let got = word_value(&n, &env, &sum) + ((eval(&n, &env, cout) as u64) << 16);
        prop_assert_eq!(got, a + b + cin);
    }

    #[test]
    fn subtractor_matches_wrapping_sub(a in 0u64..=0xfff, b in 0u64..=0xfff) {
        let mut builder = NetlistBuilder::new("psub");
        let aw = builder.input_bus("a", 12);
        let bw = builder.input_bus("b", 12);
        let (diff, geq) = builder.subtractor(&aw, &bw);
        let n = builder.finish();
        let mut env = HashMap::new();
        assign(&aw, a, &mut env);
        assign(&bw, b, &mut env);
        prop_assert_eq!(word_value(&n, &env, &diff), a.wrapping_sub(b) & 0xfff);
        prop_assert_eq!(eval(&n, &env, geq), a >= b);
    }

    #[test]
    fn shifter_matches_shift(a in 0u64..=0xffff, amt in 0u64..16) {
        let mut builder = NetlistBuilder::new("pshift");
        let aw = builder.input_bus("a", 16);
        let amtw = builder.input_bus("amt", 4);
        let sl = builder.shift_left(&aw, &amtw);
        let sr = builder.shift_right(&aw, &amtw);
        let n = builder.finish();
        let mut env = HashMap::new();
        assign(&aw, a, &mut env);
        assign(&amtw, amt, &mut env);
        prop_assert_eq!(word_value(&n, &env, &sl), (a << amt) & 0xffff);
        prop_assert_eq!(word_value(&n, &env, &sr), a >> amt);
    }

    #[test]
    fn mux_tree_picks_selected_word(values in prop::collection::vec(0u64..256, 8), sel in 0u64..8) {
        let mut builder = NetlistBuilder::new("pmux");
        let words: Vec<Vec<NetId>> = values.iter().map(|&v| builder.const_word(v, 8)).collect();
        let selw = builder.input_bus("sel", 3);
        let out = builder.mux_tree(&words, &selw);
        let n = builder.finish();
        let mut env = HashMap::new();
        assign(&selw, sel, &mut env);
        prop_assert_eq!(word_value(&n, &env, &out), values[sel as usize]);
    }

    #[test]
    fn levelization_is_a_valid_topological_order(widths in prop::collection::vec(1usize..4, 1..6)) {
        // Build a random-ish layered circuit: each layer ANDs/XORs adjacent
        // nets of the previous layer.
        let mut builder = NetlistBuilder::new("plevel");
        let mut layer = builder.input_bus("in", 6);
        for (li, &w) in widths.iter().enumerate() {
            let mut next = Vec::new();
            for i in 0..layer.len().saturating_sub(1) {
                let g = if (i + li + w) % 2 == 0 {
                    builder.and2(layer[i], layer[i + 1])
                } else {
                    builder.xor2(layer[i], layer[i + 1])
                };
                next.push(g);
            }
            if next.is_empty() {
                break;
            }
            layer = next;
        }
        builder.output_bus("out", &layer);
        let n = builder.finish();
        let lev = graph::levelize(&n).unwrap();
        // Every cell appears after all of its combinational drivers.
        let mut position = HashMap::new();
        for (idx, &cell) in lev.order.iter().enumerate() {
            position.insert(cell, idx);
        }
        for &cell in &lev.order {
            for &input in n.cell(cell).inputs() {
                if let Some(driver) = n.driver_of(input) {
                    if n.cell(driver).kind().is_combinational() {
                        prop_assert!(position[&driver] < position[&cell]);
                    }
                }
            }
        }
    }

    #[test]
    fn verilog_roundtrip_preserves_counts(width in 2usize..6, use_ff in any::<bool>()) {
        let mut builder = NetlistBuilder::new("prt");
        let a = builder.input_bus("a", width);
        let b = builder.input_bus("b", width);
        let ck = builder.input("ck");
        let x = builder.xor_word(&a, &b);
        let out = if use_ff { builder.register(&x, ck) } else { x };
        builder.output_bus("y", &out);
        let n = builder.finish();
        let text = verilog::write_verilog(&n);
        let parsed = verilog::parse_verilog(&text).unwrap();
        let s1 = stats(&n);
        let s2 = stats(&parsed);
        prop_assert_eq!(s1.combinational_cells, s2.combinational_cells);
        prop_assert_eq!(s1.flip_flops, s2.flip_flops);
        prop_assert_eq!(s1.primary_inputs, s2.primary_inputs);
        prop_assert_eq!(s1.primary_outputs, s2.primary_outputs);
    }

    #[test]
    fn bench_roundtrip_preserves_counts(width in 2usize..6, use_ff in any::<bool>(), use_mux in any::<bool>()) {
        // Mirrors `verilog_roundtrip_preserves_counts` for the `.bench`
        // frontend, including the implicit-clock handling (`#@ clock`) and
        // the MUX/TIE extensions.
        let mut builder = NetlistBuilder::new("bench_rt");
        let a = builder.input_bus("a", width);
        let b = builder.input_bus("b", width);
        let ck = builder.input("ck");
        let x = builder.xor_word(&a, &b);
        let x = if use_mux {
            let sel = builder.input("sel");
            let one = builder.tie1();
            let masked: Vec<NetId> = x.iter().map(|&n| builder.and2(n, one)).collect();
            builder.mux2_word(&x, &masked, sel)
        } else {
            x
        };
        let out = if use_ff { builder.register(&x, ck) } else { x };
        builder.output_bus("y", &out);
        let n = builder.finish();
        let text = bench::write_bench(&n).expect("builder netlists are bench-expressible");
        let parsed = bench::parse_bench(&text).unwrap();
        let s1 = stats(&n);
        let s2 = stats(&parsed);
        prop_assert_eq!(s1.combinational_cells, s2.combinational_cells);
        prop_assert_eq!(s1.flip_flops, s2.flip_flops);
        prop_assert_eq!(s1.primary_inputs, s2.primary_inputs);
        prop_assert_eq!(s1.primary_outputs, s2.primary_outputs);
        prop_assert_eq!(s1.tie_cells, s2.tie_cells);
        // Input nets keep their names through the round-trip.
        let names = |n: &Netlist| -> BTreeSet<String> {
            n.primary_input_nets()
                .into_iter()
                .map(|id| n.net(id).name().to_string())
                .collect()
        };
        prop_assert_eq!(names(&n), names(&parsed));
    }

    #[test]
    fn verilog_escaped_identifiers_roundtrip(
        raw_names in prop::collection::vec(prop::collection::vec(33u8..127u8, 1..10), 2..6),
        digit in 0u8..10,
    ) {
        // Hardens the escaped-identifier path: digit-leading names,
        // `$`-containing names, and names made of arbitrary printable
        // characters (whose escaped form is delimited only by the adjacent
        // whitespace) must all survive a write→parse round-trip.
        let mut names: BTreeSet<String> = raw_names
            .iter()
            .map(|bytes| bytes.iter().map(|&b| b as char).collect::<String>())
            .collect();
        names.insert(format!("{digit}digit_leading"));
        names.insert("with$dollar".to_string());
        names.insert("sym(),;=".to_string());
        let names: Vec<String> = names.into_iter().collect();

        let mut builder = NetlistBuilder::new("esc_rt");
        let ins: Vec<NetId> = names.iter().map(|n| builder.input(n)).collect();
        let mut acc = ins[0];
        for &next in &ins[1..] {
            acc = builder.xor2(acc, next);
        }
        builder.output("y", acc);
        let n = builder.finish();

        let text = verilog::write_verilog(&n);
        let parsed = verilog::parse_verilog(&text).unwrap();
        prop_assert_eq!(parsed.primary_inputs().len(), names.len());
        let input_names: BTreeSet<String> = parsed
            .primary_input_nets()
            .into_iter()
            .map(|id| parsed.net(id).name().to_string())
            .collect();
        prop_assert_eq!(input_names, names.into_iter().collect::<BTreeSet<_>>());
        prop_assert_eq!(
            stats(&parsed).combinational_cells,
            stats(&n).combinational_cells
        );
    }

    #[test]
    fn every_non_port_net_has_exactly_one_driver(width in 1usize..5) {
        let mut builder = NetlistBuilder::new("pdrv");
        let a = builder.input_bus("a", width);
        let b = builder.input_bus("b", width);
        let zero = builder.tie0();
        let (sum, _) = builder.ripple_adder(&a, &b, zero);
        builder.output_bus("s", &sum);
        let n = builder.finish();
        for net in n.net_ids() {
            let drivers = n.driver_of(net).into_iter().count();
            prop_assert_eq!(drivers, 1, "net {} drivers", n.net(net).name());
        }
        // And the number of loads recorded on nets matches the number of
        // input pins in the design.
        let pin_count: usize = n.live_cells().map(|(_, c)| c.inputs().len()).sum();
        let load_count: usize = n.net_ids().map(|id| n.loads_of(id).len()).sum();
        prop_assert_eq!(pin_count, load_count);
    }
}

#[test]
fn eq_const_agrees_with_equality_for_all_values() {
    let mut builder = NetlistBuilder::new("peq");
    let a = builder.input_bus("a", 6);
    let targets: Vec<(u64, NetId)> = [0u64, 1, 31, 42, 63]
        .iter()
        .map(|&t| (t, builder.eq_const(&a, t)))
        .collect();
    let n = builder.finish();
    for v in 0..64u64 {
        let mut env = HashMap::new();
        assign(&a, v, &mut env);
        for &(t, net) in &targets {
            assert_eq!(eval(&n, &env, net), v == t, "v={v} t={t}");
        }
    }
}

#[test]
fn remove_cell_keeps_invariants() {
    let mut builder = NetlistBuilder::new("prm");
    let a = builder.input_bus("a", 4);
    let b = builder.input_bus("b", 4);
    let x = builder.and_word(&a, &b);
    builder.output_bus("y", &x);
    let mut n = builder.finish();
    // Remove every AND gate; loads of the inputs must drop to zero.
    let ands: Vec<_> = n
        .live_cells()
        .filter(|(_, c)| matches!(c.kind(), CellKind::And(_)))
        .map(|(id, _)| id)
        .collect();
    for id in ands {
        n.remove_cell(id);
    }
    for &net in a.iter().chain(b.iter()) {
        assert!(n.loads_of(net).iter().all(|l| n.cell(l.cell).is_dead()
            || !n.cell(l.cell).is_dead() && n.cell(l.cell).kind() == CellKind::Output));
        assert!(n
            .loads_of(net)
            .iter()
            .all(|l| !n.cell(l.cell).kind().is_combinational()));
    }
}
