//! Strongly typed arena indices used throughout the netlist data model.
//!
//! All identifiers are thin newtypes over `u32`; they are only meaningful
//! with respect to the [`Netlist`](crate::Netlist) that produced them.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a net (a single-bit wire) inside a [`Netlist`](crate::Netlist).
///
/// # Examples
///
/// ```
/// use netlist::NetlistBuilder;
///
/// let mut b = NetlistBuilder::new("t");
/// let a = b.input("a");
/// let y = b.not(a);
/// assert_ne!(a, y);
/// ```
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NetId(pub(crate) u32);

/// Identifier of a cell (gate, flip-flop, tie or port pseudo-cell) inside a
/// [`Netlist`](crate::Netlist).
///
/// # Examples
///
/// ```
/// use netlist::{Netlist, CellKind};
///
/// let mut n = Netlist::new("t");
/// let w = n.add_net("w");
/// let c = n.add_cell(CellKind::Tie0, "tie", &[], Some(w));
/// assert_eq!(n.cell(c).kind(), CellKind::Tie0);
/// ```
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct CellId(pub(crate) u32);

/// Index of an input pin within a cell (0-based, in declaration order).
pub type PinIndex = u16;

/// A reference to one input pin of one cell: the canonical way to identify a
/// *load* of a net, and one of the two flavours of stuck-at fault sites.
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Debug, Serialize, Deserialize)]
pub struct PinRef {
    /// The cell owning the pin.
    pub cell: CellId,
    /// The input pin index within the cell.
    pub pin: PinIndex,
}

impl NetId {
    /// Creates an id from a raw arena index.
    ///
    /// The index is only meaningful for the [`Netlist`](crate::Netlist) it
    /// was obtained from (e.g. via [`index`](Self::index) or the dense
    /// iteration order of `net_ids()`).
    #[inline]
    pub fn from_index(index: usize) -> Self {
        NetId(u32::try_from(index).expect("netlist exceeds u32::MAX nets"))
    }

    /// Returns the raw arena index of this net.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl CellId {
    /// Creates an id from a raw arena index.
    ///
    /// The index is only meaningful for the [`Netlist`](crate::Netlist) it
    /// was obtained from.
    #[inline]
    pub fn from_index(index: usize) -> Self {
        CellId(u32::try_from(index).expect("netlist exceeds u32::MAX cells"))
    }

    /// Returns the raw arena index of this cell.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl PinRef {
    /// Convenience constructor.
    #[inline]
    pub fn new(cell: CellId, pin: PinIndex) -> Self {
        PinRef { cell, pin }
    }
}

impl fmt::Debug for NetId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for NetId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Debug for CellId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

impl fmt::Display for CellId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_roundtrip_index() {
        assert_eq!(NetId::from_index(42).index(), 42);
        assert_eq!(CellId::from_index(7).index(), 7);
    }

    #[test]
    fn ids_order_follows_index() {
        assert!(NetId::from_index(1) < NetId::from_index(2));
        assert!(CellId::from_index(0) < CellId::from_index(9));
    }

    #[test]
    fn debug_format_is_compact() {
        assert_eq!(format!("{:?}", NetId::from_index(3)), "n3");
        assert_eq!(format!("{:?}", CellId::from_index(5)), "c5");
        assert_eq!(format!("{}", NetId::from_index(3)), "n3");
    }

    #[test]
    fn pinref_equality() {
        let a = PinRef::new(CellId::from_index(1), 0);
        let b = PinRef::new(CellId::from_index(1), 0);
        let c = PinRef::new(CellId::from_index(1), 1);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}
