//! Ergonomic construction of gate-level netlists, including word-level
//! (multi-bit) helpers used by the processor generators.
//!
//! Multi-bit values ("words") are represented as `Vec<NetId>` with the least
//! significant bit first.

use crate::{CellAttrs, CellId, CellKind, NetId, Netlist, Reset};

/// A multi-bit bus, least-significant bit first.
pub type Word = Vec<NetId>;

/// Builder wrapping a [`Netlist`] under construction.
///
/// The builder tracks a *group context*: every cell created while a group is
/// pushed is tagged with that group (dot-joined when nested), which the
/// identification flow later uses to locate functional units such as the
/// address generation unit or the branch target buffer.
///
/// # Examples
///
/// ```
/// use netlist::NetlistBuilder;
///
/// let mut b = NetlistBuilder::new("adder4");
/// let a = b.input_bus("a", 4);
/// let c = b.input_bus("b", 4);
/// let zero = b.tie0();
/// let (sum, carry) = b.ripple_adder(&a, &c, zero);
/// b.output_bus("sum", &sum);
/// b.output("cout", carry);
/// let netlist = b.finish();
/// assert_eq!(netlist.primary_output_nets().len(), 5);
/// ```
#[derive(Debug)]
pub struct NetlistBuilder {
    netlist: Netlist,
    group_stack: Vec<String>,
    counter: u64,
}

impl NetlistBuilder {
    /// Creates a builder for a new empty design.
    pub fn new(name: impl Into<String>) -> Self {
        NetlistBuilder {
            netlist: Netlist::new(name),
            group_stack: Vec::new(),
            counter: 0,
        }
    }

    /// Consumes the builder and returns the finished netlist.
    pub fn finish(self) -> Netlist {
        self.netlist
    }

    /// Read-only access to the netlist under construction.
    pub fn netlist(&self) -> &Netlist {
        &self.netlist
    }

    /// Mutable access to the netlist under construction.
    pub fn netlist_mut(&mut self) -> &mut Netlist {
        &mut self.netlist
    }

    // ------------------------------------------------------------------
    // Group context
    // ------------------------------------------------------------------

    /// Pushes a group onto the context stack; cells created afterwards are
    /// tagged with the dot-joined stack.
    pub fn push_group(&mut self, group: impl Into<String>) {
        self.group_stack.push(group.into());
    }

    /// Pops the innermost group.
    pub fn pop_group(&mut self) {
        self.group_stack.pop();
    }

    /// Runs `f` with `group` pushed, popping it afterwards.
    pub fn with_group<R>(&mut self, group: impl Into<String>, f: impl FnOnce(&mut Self) -> R) -> R {
        self.push_group(group);
        let r = f(self);
        self.pop_group();
        r
    }

    /// The current dot-joined group context.
    pub fn current_group(&self) -> String {
        self.group_stack.join(".")
    }

    fn next_name(&mut self, kind: &str) -> String {
        self.counter += 1;
        let group = self.current_group();
        if group.is_empty() {
            format!("u_{kind}_{}", self.counter)
        } else {
            format!("{group}_{kind}_{}", self.counter)
        }
    }

    fn fresh_net(&mut self, hint: &str) -> NetId {
        let group = self.current_group();
        let name = if group.is_empty() {
            format!("{hint}_{}", self.counter + 1)
        } else {
            format!("{group}.{hint}_{}", self.counter + 1)
        };
        self.netlist.add_net(name)
    }

    fn tag(&mut self, cell: CellId) -> CellId {
        let group = self.current_group();
        if !group.is_empty() {
            self.netlist.set_attrs(cell, CellAttrs::with_group(group));
        }
        cell
    }

    // ------------------------------------------------------------------
    // Ports, ties
    // ------------------------------------------------------------------

    /// Adds a single-bit primary input and returns the net it drives.
    pub fn input(&mut self, name: impl AsRef<str>) -> NetId {
        let (cell, net) = self.netlist.add_input(name.as_ref());
        self.tag(cell);
        net
    }

    /// Adds a `width`-bit primary input bus named `name[0] .. name[width-1]`.
    pub fn input_bus(&mut self, name: impl AsRef<str>, width: usize) -> Word {
        (0..width)
            .map(|i| self.input(format!("{}[{}]", name.as_ref(), i)))
            .collect()
    }

    /// Adds a single-bit primary output observing `net` and returns its cell.
    pub fn output(&mut self, name: impl AsRef<str>, net: NetId) -> CellId {
        let cell = self.netlist.add_output(name.as_ref(), net);
        self.tag(cell)
    }

    /// Adds one primary output per bit of `word`.
    pub fn output_bus(&mut self, name: impl AsRef<str>, word: &[NetId]) -> Vec<CellId> {
        word.iter()
            .enumerate()
            .map(|(i, &net)| self.output(format!("{}[{}]", name.as_ref(), i), net))
            .collect()
    }

    /// The constant-0 net (a shared tie cell).
    pub fn tie0(&mut self) -> NetId {
        self.netlist.tie_net(false)
    }

    /// The constant-1 net (a shared tie cell).
    pub fn tie1(&mut self) -> NetId {
        self.netlist.tie_net(true)
    }

    /// A `width`-bit constant word holding `value` (LSB first).
    pub fn const_word(&mut self, value: u64, width: usize) -> Word {
        (0..width)
            .map(|i| {
                if (value >> i) & 1 == 1 {
                    self.tie1()
                } else {
                    self.tie0()
                }
            })
            .collect()
    }

    // ------------------------------------------------------------------
    // Single-bit gates
    // ------------------------------------------------------------------

    fn gate(&mut self, kind: CellKind, short: &str, inputs: &[NetId]) -> NetId {
        let name = self.next_name(short);
        let out = self.fresh_net(short);
        let cell = self.netlist.add_cell(kind, name, inputs, Some(out));
        self.tag(cell);
        out
    }

    /// Non-inverting buffer.
    pub fn buf(&mut self, a: NetId) -> NetId {
        self.gate(CellKind::Buf, "buf", &[a])
    }

    /// Inverter.
    pub fn not(&mut self, a: NetId) -> NetId {
        self.gate(CellKind::Not, "inv", &[a])
    }

    /// 2-input AND.
    pub fn and2(&mut self, a: NetId, b: NetId) -> NetId {
        self.gate(CellKind::And(2), "and", &[a, b])
    }

    /// 2-input OR.
    pub fn or2(&mut self, a: NetId, b: NetId) -> NetId {
        self.gate(CellKind::Or(2), "or", &[a, b])
    }

    /// 2-input XOR.
    pub fn xor2(&mut self, a: NetId, b: NetId) -> NetId {
        self.gate(CellKind::Xor(2), "xor", &[a, b])
    }

    /// 2-input NAND.
    pub fn nand2(&mut self, a: NetId, b: NetId) -> NetId {
        self.gate(CellKind::Nand(2), "nand", &[a, b])
    }

    /// 2-input NOR.
    pub fn nor2(&mut self, a: NetId, b: NetId) -> NetId {
        self.gate(CellKind::Nor(2), "nor", &[a, b])
    }

    /// 2-input XNOR.
    pub fn xnor2(&mut self, a: NetId, b: NetId) -> NetId {
        self.gate(CellKind::Xnor(2), "xnor", &[a, b])
    }

    fn nary(
        &mut self,
        make: fn(u8) -> CellKind,
        short: &str,
        identity: bool,
        inputs: &[NetId],
    ) -> NetId {
        match inputs.len() {
            0 => {
                if identity {
                    self.tie1()
                } else {
                    self.tie0()
                }
            }
            1 => self.buf(inputs[0]),
            n if n <= 8 => self.gate(make(n as u8), short, inputs),
            _ => {
                // Split wide gates into a balanced tree of 8-input gates. The
                // inner nodes use the non-inverting form; only AND/OR are ever
                // requested with more than 8 inputs by the generators.
                let mid = inputs.len() / 2;
                let lo = self.nary(make, short, identity, &inputs[..mid]);
                let hi = self.nary(make, short, identity, &inputs[mid..]);
                self.gate(make(2), short, &[lo, hi])
            }
        }
    }

    /// N-input AND (splits into a tree above 8 inputs; 0 inputs → constant 1).
    pub fn and(&mut self, inputs: &[NetId]) -> NetId {
        self.nary(CellKind::And, "and", true, inputs)
    }

    /// N-input OR (splits into a tree above 8 inputs; 0 inputs → constant 0).
    pub fn or(&mut self, inputs: &[NetId]) -> NetId {
        self.nary(CellKind::Or, "or", false, inputs)
    }

    /// N-input XOR (parity).
    pub fn xor(&mut self, inputs: &[NetId]) -> NetId {
        self.nary(CellKind::Xor, "xor", false, inputs)
    }

    /// 2-to-1 multiplexer: `s ? d1 : d0`.
    pub fn mux2(&mut self, d0: NetId, d1: NetId, s: NetId) -> NetId {
        self.gate(CellKind::Mux2, "mux", &[d0, d1, s])
    }

    // ------------------------------------------------------------------
    // Flip-flops and registers
    // ------------------------------------------------------------------

    /// D flip-flop without reset.
    pub fn dff(&mut self, d: NetId, ck: NetId) -> NetId {
        let name = self.next_name("dff");
        let q = self.fresh_net("q");
        let cell = self
            .netlist
            .add_cell(CellKind::Dff { reset: None }, name, &[d, ck], Some(q));
        self.tag(cell);
        q
    }

    /// D flip-flop with asynchronous reset (clears to 0).
    pub fn dff_r(&mut self, d: NetId, ck: NetId, rst: NetId, reset: Reset) -> NetId {
        let name = self.next_name("dffr");
        let q = self.fresh_net("q");
        let cell = self.netlist.add_cell(
            CellKind::Dff { reset: Some(reset) },
            name,
            &[d, ck, rst],
            Some(q),
        );
        self.tag(cell);
        q
    }

    /// Mux-scan flip-flop without reset.
    pub fn sdff(&mut self, d: NetId, si: NetId, se: NetId, ck: NetId) -> NetId {
        let name = self.next_name("sdff");
        let q = self.fresh_net("q");
        let cell = self.netlist.add_cell(
            CellKind::Sdff { reset: None },
            name,
            &[d, si, se, ck],
            Some(q),
        );
        self.tag(cell);
        q
    }

    /// A register (one DFF per bit).
    pub fn register(&mut self, d: &[NetId], ck: NetId) -> Word {
        d.iter().map(|&bit| self.dff(bit, ck)).collect()
    }

    /// A register with asynchronous reset.
    pub fn register_r(&mut self, d: &[NetId], ck: NetId, rst: NetId, reset: Reset) -> Word {
        d.iter()
            .map(|&bit| self.dff_r(bit, ck, rst, reset))
            .collect()
    }

    /// A register with a write-enable: each bit holds its value when `en = 0`
    /// (implemented with a feedback multiplexer in front of the flip-flop).
    pub fn register_en(&mut self, d: &[NetId], en: NetId, ck: NetId) -> Word {
        let width = d.len();
        // Create the flip-flops first with placeholder data nets so that the
        // feedback muxes can reference the Q outputs.
        let mut q = Vec::with_capacity(width);
        let mut placeholder = Vec::with_capacity(width);
        for i in 0..width {
            let ph = self.fresh_net(&format!("en_d{i}"));
            let qi = {
                let name = self.next_name("dff");
                let qn = self.fresh_net("q");
                let cell =
                    self.netlist
                        .add_cell(CellKind::Dff { reset: None }, name, &[ph, ck], Some(qn));
                self.tag(cell);
                qn
            };
            q.push(qi);
            placeholder.push(ph);
        }
        for i in 0..width {
            let mux_out = self.mux2(q[i], d[i], en);
            // Drive the placeholder net from the mux via a buffer so the
            // placeholder keeps a single driver.
            let name = self.next_name("buf");
            let cell = self
                .netlist
                .add_cell(CellKind::Buf, name, &[mux_out], Some(placeholder[i]));
            self.tag(cell);
        }
        q
    }

    // ------------------------------------------------------------------
    // Word-level combinational helpers
    // ------------------------------------------------------------------

    /// Bitwise NOT of a word.
    pub fn not_word(&mut self, a: &[NetId]) -> Word {
        a.iter().map(|&bit| self.not(bit)).collect()
    }

    /// Bitwise AND of two equal-width words.
    ///
    /// # Panics
    ///
    /// Panics if the widths differ.
    pub fn and_word(&mut self, a: &[NetId], b: &[NetId]) -> Word {
        assert_eq!(a.len(), b.len(), "width mismatch");
        a.iter().zip(b).map(|(&x, &y)| self.and2(x, y)).collect()
    }

    /// Bitwise OR of two equal-width words.
    ///
    /// # Panics
    ///
    /// Panics if the widths differ.
    pub fn or_word(&mut self, a: &[NetId], b: &[NetId]) -> Word {
        assert_eq!(a.len(), b.len(), "width mismatch");
        a.iter().zip(b).map(|(&x, &y)| self.or2(x, y)).collect()
    }

    /// Bitwise XOR of two equal-width words.
    ///
    /// # Panics
    ///
    /// Panics if the widths differ.
    pub fn xor_word(&mut self, a: &[NetId], b: &[NetId]) -> Word {
        assert_eq!(a.len(), b.len(), "width mismatch");
        a.iter().zip(b).map(|(&x, &y)| self.xor2(x, y)).collect()
    }

    /// Per-bit 2-to-1 multiplexer between two equal-width words.
    ///
    /// # Panics
    ///
    /// Panics if the widths differ.
    pub fn mux2_word(&mut self, d0: &[NetId], d1: &[NetId], s: NetId) -> Word {
        assert_eq!(d0.len(), d1.len(), "width mismatch");
        d0.iter()
            .zip(d1)
            .map(|(&x, &y)| self.mux2(x, y, s))
            .collect()
    }

    /// Selects one of `2^sel.len()` equal-width words with a balanced mux
    /// tree. Missing words (when `words.len() < 2^sel.len()`) repeat the last
    /// provided word.
    ///
    /// # Panics
    ///
    /// Panics if `words` is empty.
    pub fn mux_tree(&mut self, words: &[Word], sel: &[NetId]) -> Word {
        assert!(!words.is_empty(), "mux_tree needs at least one input word");
        if sel.is_empty() {
            return words[0].clone();
        }
        let half = 1usize << (sel.len() - 1);
        let pick = |i: usize| -> &Word { words.get(i).unwrap_or_else(|| words.last().unwrap()) };
        let lo_words: Vec<Word> = (0..half).map(|i| pick(i).clone()).collect();
        let hi_words: Vec<Word> = (0..half).map(|i| pick(half + i).clone()).collect();
        let lo = self.mux_tree(&lo_words, &sel[..sel.len() - 1]);
        let hi = self.mux_tree(&hi_words, &sel[..sel.len() - 1]);
        self.mux2_word(&lo, &hi, sel[sel.len() - 1])
    }

    /// OR-reduction of a word (1 if any bit is 1).
    pub fn reduce_or(&mut self, a: &[NetId]) -> NetId {
        self.or(a)
    }

    /// AND-reduction of a word (1 if all bits are 1).
    pub fn reduce_and(&mut self, a: &[NetId]) -> NetId {
        self.and(a)
    }

    /// XOR-reduction (parity) of a word.
    pub fn reduce_xor(&mut self, a: &[NetId]) -> NetId {
        self.xor(a)
    }

    /// Full adder for one bit; returns `(sum, carry_out)`.
    pub fn full_adder(&mut self, a: NetId, b: NetId, cin: NetId) -> (NetId, NetId) {
        let axb = self.xor2(a, b);
        let sum = self.xor2(axb, cin);
        let t1 = self.and2(a, b);
        let t2 = self.and2(axb, cin);
        let cout = self.or2(t1, t2);
        (sum, cout)
    }

    /// Ripple-carry adder over two equal-width words; returns
    /// `(sum, carry_out)`.
    ///
    /// # Panics
    ///
    /// Panics if the widths differ.
    pub fn ripple_adder(&mut self, a: &[NetId], b: &[NetId], cin: NetId) -> (Word, NetId) {
        assert_eq!(a.len(), b.len(), "width mismatch");
        let mut carry = cin;
        let mut sum = Vec::with_capacity(a.len());
        for (&x, &y) in a.iter().zip(b) {
            let (s, c) = self.full_adder(x, y, carry);
            sum.push(s);
            carry = c;
        }
        (sum, carry)
    }

    /// Two's-complement subtractor `a - b`; returns `(difference, borrow_free)`
    /// where the second value is the adder carry-out (1 when `a >= b`
    /// unsigned).
    pub fn subtractor(&mut self, a: &[NetId], b: &[NetId]) -> (Word, NetId) {
        let nb = self.not_word(b);
        let one = self.tie1();
        self.ripple_adder(a, &nb, one)
    }

    /// Incrementer `a + 1`; returns `(sum, carry_out)`.
    pub fn incrementer(&mut self, a: &[NetId]) -> (Word, NetId) {
        let zero = self.const_word(0, a.len());
        let one = self.tie1();
        self.ripple_adder(a, &zero, one)
    }

    /// Equality comparator between a word and a compile-time constant.
    pub fn eq_const(&mut self, a: &[NetId], value: u64) -> NetId {
        let bits: Vec<NetId> = a
            .iter()
            .enumerate()
            .map(|(i, &bit)| {
                if (value >> i) & 1 == 1 {
                    bit
                } else {
                    self.not(bit)
                }
            })
            .collect();
        self.and(&bits)
    }

    /// Equality comparator between two equal-width words.
    ///
    /// # Panics
    ///
    /// Panics if the widths differ.
    pub fn eq_words(&mut self, a: &[NetId], b: &[NetId]) -> NetId {
        assert_eq!(a.len(), b.len(), "width mismatch");
        let diffs: Vec<NetId> = a.iter().zip(b).map(|(&x, &y)| self.xnor2(x, y)).collect();
        self.and(&diffs)
    }

    /// 1-if-zero detector for a word.
    pub fn is_zero(&mut self, a: &[NetId]) -> NetId {
        let any = self.or(a);
        self.not(any)
    }

    /// One-hot decoder: `sel.len()` select bits → `2^sel.len()` outputs.
    pub fn decoder(&mut self, sel: &[NetId]) -> Word {
        let n = 1usize << sel.len();
        (0..n)
            .map(|value| self.eq_const(sel, value as u64))
            .collect()
    }

    /// Logical left barrel shifter: shifts `a` left by the unsigned value of
    /// `amount` (only the low `log2(a.len()).ceil()` bits of `amount` are
    /// used; larger amounts saturate to zero output).
    pub fn shift_left(&mut self, a: &[NetId], amount: &[NetId]) -> Word {
        let width = a.len();
        let stages = amount
            .len()
            .min(usize::BITS as usize - (width.leading_zeros() as usize));
        let mut current: Word = a.to_vec();
        let zero = self.tie0();
        for (stage, &sel) in amount.iter().enumerate().take(stages.max(amount.len())) {
            let shift = 1usize << stage;
            if shift >= width {
                // Shifting by >= width when the select bit is 1 zeroes everything.
                let zeros = vec![zero; width];
                current = self.mux2_word(&current, &zeros, sel);
                continue;
            }
            let mut shifted = vec![zero; shift];
            shifted.extend_from_slice(&current[..width - shift]);
            current = self.mux2_word(&current, &shifted, sel);
        }
        current
    }

    /// Logical right barrel shifter.
    pub fn shift_right(&mut self, a: &[NetId], amount: &[NetId]) -> Word {
        let width = a.len();
        let mut current: Word = a.to_vec();
        let zero = self.tie0();
        for (stage, &sel) in amount.iter().enumerate() {
            let shift = 1usize << stage;
            if shift >= width {
                let zeros = vec![zero; width];
                current = self.mux2_word(&current, &zeros, sel);
                continue;
            }
            let mut shifted: Word = current[shift..].to_vec();
            shifted.extend(std::iter::repeat_n(zero, shift));
            current = self.mux2_word(&current, &shifted, sel);
        }
        current
    }

    /// Unsigned less-than comparator (`a < b`).
    pub fn lt_unsigned(&mut self, a: &[NetId], b: &[NetId]) -> NetId {
        let (_, carry) = self.subtractor(a, b);
        // carry == 1 means a >= b
        self.not(carry)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Evaluates a purely combinational builder output with two-valued logic
    /// by walking drivers recursively (test helper — the real simulator lives
    /// in the `atpg` crate).
    fn eval(
        netlist: &Netlist,
        assignment: &std::collections::HashMap<NetId, bool>,
        net: NetId,
    ) -> bool {
        if let Some(&v) = assignment.get(&net) {
            return v;
        }
        let driver = netlist.driver_of(net).expect("floating net in eval");
        let cell = netlist.cell(driver);
        let inputs: Vec<bool> = cell
            .inputs()
            .iter()
            .map(|&n| eval(netlist, assignment, n))
            .collect();
        cell.kind()
            .eval_bool(&inputs)
            .expect("sequential cell in eval")
    }

    fn word_value(
        netlist: &Netlist,
        assignment: &std::collections::HashMap<NetId, bool>,
        word: &[NetId],
    ) -> u64 {
        word.iter()
            .enumerate()
            .map(|(i, &n)| (eval(netlist, assignment, n) as u64) << i)
            .sum()
    }

    fn assign(word: &[NetId], value: u64, map: &mut std::collections::HashMap<NetId, bool>) {
        for (i, &n) in word.iter().enumerate() {
            map.insert(n, (value >> i) & 1 == 1);
        }
    }

    #[test]
    fn ripple_adder_adds() {
        let mut b = NetlistBuilder::new("t");
        let a = b.input_bus("a", 8);
        let c = b.input_bus("b", 8);
        let zero = b.tie0();
        let (sum, cout) = b.ripple_adder(&a, &c, zero);
        let n = b.finish();
        for (x, y) in [(0u64, 0u64), (1, 1), (100, 55), (200, 60), (255, 255)] {
            let mut env = std::collections::HashMap::new();
            assign(&a, x, &mut env);
            assign(&c, y, &mut env);
            let got = word_value(&n, &env, &sum);
            let carry = eval(&n, &env, cout) as u64;
            assert_eq!(got + (carry << 8), x + y, "{x}+{y}");
        }
    }

    #[test]
    fn subtractor_and_comparators() {
        let mut b = NetlistBuilder::new("t");
        let a = b.input_bus("a", 6);
        let c = b.input_bus("b", 6);
        let (diff, geq) = b.subtractor(&a, &c);
        let lt = b.lt_unsigned(&a, &c);
        let eq = b.eq_words(&a, &c);
        let n = b.finish();
        for (x, y) in [(5u64, 3u64), (3, 5), (7, 7), (63, 0), (0, 63)] {
            let mut env = std::collections::HashMap::new();
            assign(&a, x, &mut env);
            assign(&c, y, &mut env);
            assert_eq!(word_value(&n, &env, &diff), (x.wrapping_sub(y)) & 0x3f);
            assert_eq!(eval(&n, &env, geq), x >= y);
            assert_eq!(eval(&n, &env, lt), x < y);
            assert_eq!(eval(&n, &env, eq), x == y);
        }
    }

    #[test]
    fn mux_tree_selects() {
        let mut b = NetlistBuilder::new("t");
        let words: Vec<Word> = (0..4).map(|i| b.const_word(i * 3 + 1, 4)).collect();
        let sel = b.input_bus("sel", 2);
        let out = b.mux_tree(&words, &sel);
        let n = b.finish();
        for s in 0..4u64 {
            let mut env = std::collections::HashMap::new();
            assign(&sel, s, &mut env);
            assert_eq!(word_value(&n, &env, &out), s * 3 + 1);
        }
    }

    #[test]
    fn decoder_is_one_hot() {
        let mut b = NetlistBuilder::new("t");
        let sel = b.input_bus("sel", 3);
        let outs = b.decoder(&sel);
        let n = b.finish();
        for s in 0..8u64 {
            let mut env = std::collections::HashMap::new();
            assign(&sel, s, &mut env);
            let value = word_value(&n, &env, &outs);
            assert_eq!(value, 1 << s);
        }
    }

    #[test]
    fn shifters_shift() {
        let mut b = NetlistBuilder::new("t");
        let a = b.input_bus("a", 8);
        let amt = b.input_bus("amt", 3);
        let sl = b.shift_left(&a, &amt);
        let sr = b.shift_right(&a, &amt);
        let n = b.finish();
        for value in [0b1011_0101u64, 0xff, 1] {
            for shift in 0..8u64 {
                let mut env = std::collections::HashMap::new();
                assign(&a, value, &mut env);
                assign(&amt, shift, &mut env);
                assert_eq!(
                    word_value(&n, &env, &sl),
                    (value << shift) & 0xff,
                    "sll {value} {shift}"
                );
                assert_eq!(
                    word_value(&n, &env, &sr),
                    value >> shift,
                    "srl {value} {shift}"
                );
            }
        }
    }

    #[test]
    fn eq_const_and_is_zero() {
        let mut b = NetlistBuilder::new("t");
        let a = b.input_bus("a", 5);
        let is17 = b.eq_const(&a, 17);
        let z = b.is_zero(&a);
        let n = b.finish();
        for v in 0..32u64 {
            let mut env = std::collections::HashMap::new();
            assign(&a, v, &mut env);
            assert_eq!(eval(&n, &env, is17), v == 17);
            assert_eq!(eval(&n, &env, z), v == 0);
        }
    }

    #[test]
    fn wide_gates_split_into_trees() {
        let mut b = NetlistBuilder::new("t");
        let a = b.input_bus("a", 20);
        let all = b.reduce_and(&a);
        let any = b.reduce_or(&a);
        let n = b.finish();
        let mut env = std::collections::HashMap::new();
        assign(&a, (1 << 20) - 1, &mut env);
        assert!(eval(&n, &env, all));
        assign(&a, (1 << 20) - 2, &mut env);
        assert!(!eval(&n, &env, all));
        assert!(eval(&n, &env, any));
        assign(&a, 0, &mut env);
        assert!(!eval(&n, &env, any));
    }

    #[test]
    fn group_context_tags_cells() {
        let mut b = NetlistBuilder::new("t");
        let a = b.input("a");
        b.push_group("alu");
        let x = b.with_group("logic", |b| b.not(a));
        let _y = b.and2(a, x);
        b.pop_group();
        let _z = b.not(a);
        let n = b.finish();
        assert_eq!(n.cells_in_group("alu").len(), 2);
        assert_eq!(n.cells_in_group("alu.logic").len(), 1);
        assert_eq!(n.groups(), vec!["alu".to_string(), "alu.logic".to_string()]);
    }

    #[test]
    fn nary_edge_cases() {
        let mut b = NetlistBuilder::new("t");
        let a = b.input("a");
        let and0 = b.and(&[]);
        let or0 = b.or(&[]);
        let and1 = b.and(&[a]);
        let n_before = b.netlist().num_cells();
        assert!(n_before > 0);
        let n = b.finish();
        let mut env = std::collections::HashMap::new();
        env.insert(a, true);
        assert!(eval(&n, &env, and0));
        assert!(!eval(&n, &env, or0));
        assert!(eval(&n, &env, and1));
        env.insert(a, false);
        assert!(!eval(&n, &env, and1));
    }

    #[test]
    fn const_word_bits() {
        let mut b = NetlistBuilder::new("t");
        let w = b.const_word(0b1010, 4);
        let n = b.finish();
        let env = std::collections::HashMap::new();
        assert_eq!(word_value(&n, &env, &w), 0b1010);
    }
}
