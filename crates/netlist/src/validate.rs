//! Design-rule validation for netlists.

use crate::{graph, CellKind, Netlist};
use std::fmt;

/// A single validation finding.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ValidationIssue {
    /// A net has no driver (and floating nets were not allowed).
    FloatingNet {
        /// Name of the offending net.
        net: String,
    },
    /// A net has no loads at all (dangling driver). Reported as a warning-level
    /// issue; it does not make the design unusable.
    UnloadedNet {
        /// Name of the offending net.
        net: String,
    },
    /// The combinational logic contains a cycle.
    CombinationalLoop {
        /// Instance name of a cell on the loop.
        cell: String,
    },
    /// A sequential cell's clock pin is driven by combinational logic other
    /// than a buffer tree rooted at a primary input (gated or generated
    /// clocks are not supported by the simulators in this workspace).
    UnsupportedClock {
        /// Instance name of the flip-flop.
        cell: String,
    },
}

impl fmt::Display for ValidationIssue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidationIssue::FloatingNet { net } => write!(f, "net `{net}` has no driver"),
            ValidationIssue::UnloadedNet { net } => write!(f, "net `{net}` has no loads"),
            ValidationIssue::CombinationalLoop { cell } => {
                write!(f, "combinational loop through `{cell}`")
            }
            ValidationIssue::UnsupportedClock { cell } => {
                write!(f, "flip-flop `{cell}` has a gated or generated clock")
            }
        }
    }
}

/// Options controlling which rules [`validate`] applies.
#[derive(Clone, Copy, Debug)]
pub struct ValidateOptions {
    /// Allow nets without a driver (true after manipulation steps that float
    /// debug outputs).
    pub allow_floating_nets: bool,
    /// Allow nets without any load.
    pub allow_unloaded_nets: bool,
    /// Check that flip-flop clock pins trace back to a primary input through
    /// buffers/inverters only.
    pub check_clocks: bool,
}

impl Default for ValidateOptions {
    fn default() -> Self {
        ValidateOptions {
            allow_floating_nets: false,
            allow_unloaded_nets: true,
            check_clocks: true,
        }
    }
}

/// Validates structural design rules, returning every issue found.
///
/// An empty result means the netlist is clean under the given options.
pub fn validate(netlist: &Netlist, options: ValidateOptions) -> Vec<ValidationIssue> {
    let mut issues = Vec::new();

    for net_id in netlist.net_ids() {
        let net = netlist.net(net_id);
        let has_live_loads = net.loads().iter().any(|l| !netlist.cell(l.cell).is_dead());
        let has_live_driver = net
            .driver()
            .map(|d| !netlist.cell(d).is_dead())
            .unwrap_or(false);
        if !has_live_driver && !has_live_loads {
            // Completely dangling nets (e.g. after cell removal) are ignored.
            continue;
        }
        if !has_live_driver && !options.allow_floating_nets {
            issues.push(ValidationIssue::FloatingNet {
                net: net.name().to_string(),
            });
        }
        if !has_live_loads && !options.allow_unloaded_nets {
            issues.push(ValidationIssue::UnloadedNet {
                net: net.name().to_string(),
            });
        }
    }

    if let Err(looped) = graph::levelize(netlist) {
        issues.push(ValidationIssue::CombinationalLoop {
            cell: looped.cell_name,
        });
    }

    if options.check_clocks {
        for ff in netlist.sequential_cells() {
            let kind = netlist.cell(ff).kind();
            let Some(clock_pin) = kind.clock_pin() else {
                continue;
            };
            let mut net = netlist.input_net(ff, clock_pin);
            let mut ok = false;
            // Walk backwards through buffers and inverters only.
            for _ in 0..netlist.num_cells() + 1 {
                match netlist.driver_of(net) {
                    None => break,
                    Some(driver) => {
                        let dk = netlist.cell(driver).kind();
                        match dk {
                            CellKind::Input | CellKind::Tie0 | CellKind::Tie1 => {
                                ok = true;
                                break;
                            }
                            CellKind::Buf | CellKind::Not => {
                                net = netlist.input_net(driver, 0);
                            }
                            _ => break,
                        }
                    }
                }
            }
            if !ok {
                issues.push(ValidationIssue::UnsupportedClock {
                    cell: netlist.cell(ff).name().to_string(),
                });
            }
        }
    }

    issues
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CellKind, Netlist, NetlistBuilder};

    #[test]
    fn clean_design_validates() {
        let mut b = NetlistBuilder::new("t");
        let a = b.input("a");
        let ck = b.input("ck");
        let x = b.not(a);
        let q = b.dff(x, ck);
        b.output("q", q);
        let n = b.finish();
        assert!(validate(&n, ValidateOptions::default()).is_empty());
    }

    #[test]
    fn floating_net_reported() {
        let mut nl = Netlist::new("t");
        let w = nl.add_net("w");
        nl.add_output("w", w);
        let issues = validate(&nl, ValidateOptions::default());
        assert_eq!(
            issues,
            vec![ValidationIssue::FloatingNet {
                net: "w".to_string()
            }]
        );
        let relaxed = validate(
            &nl,
            ValidateOptions {
                allow_floating_nets: true,
                ..ValidateOptions::default()
            },
        );
        assert!(relaxed.is_empty());
    }

    #[test]
    fn unloaded_net_reported_when_requested() {
        let mut nl = Netlist::new("t");
        let (_, _a) = nl.add_input("a");
        let strict = validate(
            &nl,
            ValidateOptions {
                allow_unloaded_nets: false,
                ..ValidateOptions::default()
            },
        );
        assert!(matches!(strict[0], ValidationIssue::UnloadedNet { .. }));
    }

    #[test]
    fn loop_reported() {
        let mut nl = Netlist::new("loop");
        let (_, a) = nl.add_input("a");
        let w1 = nl.add_net("w1");
        let w2 = nl.add_net("w2");
        nl.add_cell(CellKind::And(2), "g1", &[a, w2], Some(w1));
        nl.add_cell(CellKind::Buf, "g2", &[w1], Some(w2));
        nl.add_output("y", w1);
        let issues = validate(&nl, ValidateOptions::default());
        assert!(issues
            .iter()
            .any(|i| matches!(i, ValidationIssue::CombinationalLoop { .. })));
    }

    #[test]
    fn gated_clock_reported() {
        let mut b = NetlistBuilder::new("t");
        let a = b.input("a");
        let ck = b.input("ck");
        let en = b.input("en");
        let gated = b.and2(ck, en);
        let q = b.dff(a, gated);
        b.output("q", q);
        let n = b.finish();
        let issues = validate(&n, ValidateOptions::default());
        assert!(issues
            .iter()
            .any(|i| matches!(i, ValidationIssue::UnsupportedClock { .. })));
        let relaxed = validate(
            &n,
            ValidateOptions {
                check_clocks: false,
                ..ValidateOptions::default()
            },
        );
        assert!(relaxed.is_empty());
    }

    #[test]
    fn dead_cells_do_not_trigger_floating() {
        let mut b = NetlistBuilder::new("t");
        let a = b.input("a");
        let x = b.not(a);
        b.output("y", x);
        let mut n = b.finish();
        let inv = n.driver_of(x).unwrap();
        let out_cell = n.primary_outputs()[0];
        n.remove_cell(out_cell);
        n.remove_cell(inv);
        // `x` now has neither driver nor loads — ignored.
        let issues = validate(&n, ValidateOptions::default());
        assert!(issues.is_empty(), "{issues:?}");
    }
}
