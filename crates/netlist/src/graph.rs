//! Graph algorithms over a [`Netlist`]: levelization of the combinational
//! logic, fan-in / fan-out cone extraction and reachability queries.
//!
//! Flip-flop outputs, tie cells and primary inputs are treated as sources;
//! flip-flop inputs and primary outputs are sinks. This "cuts" the design at
//! the sequential elements so the combinational portion is a DAG.

use crate::{CellId, CellKind, NetId, Netlist};
use std::collections::{HashSet, VecDeque};
use std::fmt;

/// Error returned when the combinational logic contains a cycle.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CombinationalLoop {
    /// A cell that participates in the loop.
    pub cell: CellId,
    /// Instance name of that cell.
    pub cell_name: String,
}

impl fmt::Display for CombinationalLoop {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "combinational loop detected through cell `{}`",
            self.cell_name
        )
    }
}

impl std::error::Error for CombinationalLoop {}

/// Result of levelizing a netlist: a valid topological evaluation order of
/// the combinational cells plus per-cell logic depth.
#[derive(Clone, Debug)]
pub struct Levelization {
    /// Combinational cells (gates, muxes, buffers) in topological order.
    pub order: Vec<CellId>,
    /// Logic level of every cell (indexed by `CellId::index()`); sources are
    /// level 0, a gate is 1 + max level of its driver cells. Sequential and
    /// port cells keep level 0.
    pub level: Vec<u32>,
    /// Maximum combinational depth of the design.
    pub max_level: u32,
}

/// Computes a topological order of the live combinational cells.
///
/// # Errors
///
/// Returns [`CombinationalLoop`] if the combinational logic is cyclic.
pub fn levelize(netlist: &Netlist) -> Result<Levelization, CombinationalLoop> {
    let num_cells = netlist.num_cells();
    let mut level = vec![0u32; num_cells];
    let mut pending = vec![0u32; num_cells];
    let mut order = Vec::new();
    let mut queue = VecDeque::new();
    let mut comb_total = 0usize;

    for (id, cell) in netlist.live_cells() {
        if !cell.kind().is_combinational() {
            continue;
        }
        comb_total += 1;
        // Count how many of this cell's input nets are driven by another
        // *combinational* cell; those must be evaluated first.
        let mut deps = 0u32;
        for &net in cell.inputs() {
            if let Some(driver) = netlist.driver_of(net) {
                if netlist.cell(driver).kind().is_combinational() && !netlist.cell(driver).is_dead()
                {
                    deps += 1;
                }
            }
        }
        pending[id.index()] = deps;
        if deps == 0 {
            queue.push_back(id);
        }
    }

    let mut max_level = 0u32;
    while let Some(id) = queue.pop_front() {
        order.push(id);
        let my_level = level[id.index()];
        if let Some(out) = netlist.output_net(id) {
            for load in netlist.loads_of(out) {
                let sink = load.cell;
                let sink_cell = netlist.cell(sink);
                if sink_cell.is_dead() || !sink_cell.kind().is_combinational() {
                    continue;
                }
                level[sink.index()] = level[sink.index()].max(my_level + 1);
                max_level = max_level.max(level[sink.index()]);
                pending[sink.index()] -= 1;
                if pending[sink.index()] == 0 {
                    queue.push_back(sink);
                }
            }
        }
    }

    if order.len() != comb_total {
        // Some cell never reached zero pending dependencies: a loop.
        let culprit = netlist
            .live_cells()
            .find(|(id, c)| c.kind().is_combinational() && pending[id.index()] > 0)
            .map(|(id, c)| (id, c.name().to_string()))
            .expect("loop detected but no culprit found");
        return Err(CombinationalLoop {
            cell: culprit.0,
            cell_name: culprit.1,
        });
    }

    Ok(Levelization {
        order,
        level,
        max_level,
    })
}

/// Returns every live cell in the transitive fan-in of `nets`, stopping at
/// (and excluding the fan-in of) sequential cells, tie cells and primary
/// inputs when `stop_at_sequential` is set. The stopping cells themselves are
/// included in the result.
pub fn fanin_cone(netlist: &Netlist, nets: &[NetId], stop_at_sequential: bool) -> HashSet<CellId> {
    let mut seen: HashSet<CellId> = HashSet::new();
    let mut stack: Vec<NetId> = nets.to_vec();
    while let Some(net) = stack.pop() {
        let Some(driver) = netlist.driver_of(net) else {
            continue;
        };
        if netlist.cell(driver).is_dead() || !seen.insert(driver) {
            continue;
        }
        let kind = netlist.cell(driver).kind();
        if stop_at_sequential && (kind.is_sequential() || kind.is_tie() || kind == CellKind::Input)
        {
            continue;
        }
        for &input in netlist.cell(driver).inputs() {
            stack.push(input);
        }
    }
    seen
}

/// Returns every live cell in the transitive fan-out of `nets`, stopping at
/// (but including) sequential cells and primary outputs when
/// `stop_at_sequential` is set.
pub fn fanout_cone(netlist: &Netlist, nets: &[NetId], stop_at_sequential: bool) -> HashSet<CellId> {
    let mut seen: HashSet<CellId> = HashSet::new();
    let mut stack: Vec<NetId> = nets.to_vec();
    while let Some(net) = stack.pop() {
        for load in netlist.loads_of(net) {
            let sink = load.cell;
            if netlist.cell(sink).is_dead() || !seen.insert(sink) {
                continue;
            }
            let kind = netlist.cell(sink).kind();
            if stop_at_sequential && (kind.is_sequential() || kind == CellKind::Output) {
                continue;
            }
            if let Some(out) = netlist.output_net(sink) {
                stack.push(out);
            }
        }
    }
    seen
}

/// Reusable allocation backing for repeated [`influence_cone_with`] calls:
/// dense visited bitmaps (cleared incrementally between extractions) plus the
/// traversal stack and result vector.
///
/// One extraction per fault site is the hot shape of cone-clipped ATPG, so
/// the marks are sized once for the design and only the entries touched by
/// the previous cone are cleared.
///
/// [`influence_cone_with`]: ConeExtractor::influence_cone_with
#[derive(Clone, Debug)]
pub struct ConeExtractor {
    cell_mark: Vec<bool>,
    net_mark: Vec<bool>,
    marked_nets: Vec<u32>,
    stack: Vec<NetId>,
    cells: Vec<CellId>,
    fanout: Vec<CellId>,
}

impl ConeExtractor {
    /// Creates an extractor sized for `netlist`.
    pub fn new(netlist: &Netlist) -> Self {
        ConeExtractor {
            cell_mark: vec![false; netlist.num_cells()],
            net_mark: vec![false; netlist.num_nets()],
            marked_nets: Vec::new(),
            stack: Vec::new(),
            cells: Vec::new(),
            fanout: Vec::new(),
        }
    }

    /// The forward (fanout-cone) subset of the last
    /// [`influence_cone_with`](Self::influence_cone_with) extraction, sorted
    /// by arena index: every cell a fault effect entering on the site nets
    /// can reach before the sequential / primary-output boundary — the only
    /// cells whose values can ever differ between the good and the faulty
    /// machine.
    pub fn fanout_cone(&self) -> &[CellId] {
        &self.fanout
    }

    /// Computes the *influence cone* of a fault entering the circuit on
    /// `site_nets`: the union of the forward fanout cone of the sites
    /// (stopping at, but including, sequential cells and primary outputs) and
    /// the transitive fanin of every cell in that cone plus the sites
    /// themselves (stopping at, but including, sequential cells, tie cells
    /// and primary inputs).
    ///
    /// This is the complete set of cells that can (a) carry the fault effect
    /// toward an observation point or (b) control the excitation of the site
    /// and the side inputs along every propagation path — exactly the gate
    /// set a combinational ATPG engine has to reason about for a fault on the
    /// sites. The returned slice is sorted by arena index and valid until the
    /// next extraction.
    ///
    /// The PODEM engine itself only consumes the forward half
    /// ([`fanout_cone_with`](Self::fanout_cone_with)) — its good machine is
    /// maintained incrementally, so it never materialises the fanin closure —
    /// but the full influence cone is the right query for batch-oriented
    /// consumers (per-fault sub-netlist extraction, cone-sized cost models,
    /// partitioning a proof worklist by overlap).
    pub fn influence_cone_with(&mut self, netlist: &Netlist, site_nets: &[NetId]) -> &[CellId] {
        self.extract(netlist, site_nets, true);
        &self.cells
    }

    /// The forward half of [`influence_cone_with`](Self::influence_cone_with)
    /// alone: the fanout cone of `site_nets`, stopping at (but including)
    /// sequential cells and primary outputs — the only cells whose values can
    /// ever differ between a good and a faulty machine for a fault on the
    /// sites. Sorted by arena index; valid until the next extraction.
    pub fn fanout_cone_with(&mut self, netlist: &Netlist, site_nets: &[NetId]) -> &[CellId] {
        self.extract(netlist, site_nets, false);
        &self.fanout
    }

    fn extract(&mut self, netlist: &Netlist, site_nets: &[NetId], with_fanin: bool) {
        debug_assert_eq!(self.cell_mark.len(), netlist.num_cells());
        for &cell in &self.cells {
            self.cell_mark[cell.index()] = false;
        }
        for &net in &self.marked_nets {
            self.net_mark[net as usize] = false;
        }
        self.cells.clear();
        self.marked_nets.clear();

        // Forward pass: the fanout cone of the sites. Record every net the
        // cone reads (cell inputs) as a fanin seed for the backward pass.
        self.stack.clear();
        for &net in site_nets {
            self.mark_net(net);
            self.stack.push(net);
        }
        while let Some(net) = self.stack.pop() {
            for load in netlist.loads_of(net) {
                let sink = load.cell;
                let cell = netlist.cell(sink);
                if cell.is_dead() || self.cell_mark[sink.index()] {
                    continue;
                }
                self.cell_mark[sink.index()] = true;
                self.cells.push(sink);
                let kind = cell.kind();
                if kind.is_sequential() || kind == CellKind::Output {
                    continue;
                }
                if let Some(out) = netlist.output_net(sink) {
                    self.mark_net(out);
                    self.stack.push(out);
                }
            }
        }
        let fanout_end = self.cells.len();
        self.fanout.clear();
        self.fanout.extend_from_slice(&self.cells);
        self.fanout.sort_unstable();
        if !with_fanin {
            self.cells.sort_unstable();
            return;
        }

        // Backward pass: the transitive fanin of the sites and of every input
        // net the fanout cone reads.
        self.stack.extend(site_nets.iter().copied());
        for i in 0..fanout_end {
            let cell = self.cells[i];
            for &input in netlist.cell(cell).inputs() {
                self.mark_net(input);
                self.stack.push(input);
            }
        }
        while let Some(net) = self.stack.pop() {
            let Some(driver) = netlist.driver_of(net) else {
                continue;
            };
            if netlist.cell(driver).is_dead() || self.cell_mark[driver.index()] {
                continue;
            }
            self.cell_mark[driver.index()] = true;
            self.cells.push(driver);
            let kind = netlist.cell(driver).kind();
            if kind.is_sequential() || kind.is_tie() || kind == CellKind::Input {
                continue;
            }
            for &input in netlist.cell(driver).inputs() {
                self.mark_net(input);
                self.stack.push(input);
            }
        }

        self.cells.sort_unstable();
    }

    fn mark_net(&mut self, net: NetId) {
        if !self.net_mark[net.index()] {
            self.net_mark[net.index()] = true;
            self.marked_nets.push(net.index() as u32);
        }
    }
}

/// One-shot form of [`ConeExtractor::influence_cone_with`]: the influence
/// cone of a fault on `site_nets` as a set. Hot callers (one extraction per
/// fault) should hold a [`ConeExtractor`] instead.
pub fn influence_cone(netlist: &Netlist, site_nets: &[NetId]) -> HashSet<CellId> {
    let mut extractor = ConeExtractor::new(netlist);
    extractor
        .influence_cone_with(netlist, site_nets)
        .iter()
        .copied()
        .collect()
}

/// Returns the set of nets reachable (forward) from `nets`, crossing
/// combinational cells only.
pub fn reachable_nets(netlist: &Netlist, nets: &[NetId]) -> HashSet<NetId> {
    let mut seen: HashSet<NetId> = nets.iter().copied().collect();
    let mut stack: Vec<NetId> = nets.to_vec();
    while let Some(net) = stack.pop() {
        for load in netlist.loads_of(net) {
            let sink = load.cell;
            let cell = netlist.cell(sink);
            if cell.is_dead() || !cell.kind().is_combinational() {
                continue;
            }
            if let Some(out) = netlist.output_net(sink) {
                if seen.insert(out) {
                    stack.push(out);
                }
            }
        }
    }
    seen
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NetlistBuilder;

    fn sample() -> (Netlist, NetId, NetId) {
        let mut b = NetlistBuilder::new("t");
        let a = b.input("a");
        let c = b.input("b");
        let ck = b.input("ck");
        let x = b.and2(a, c);
        let q = b.dff(x, ck);
        let y = b.or2(q, a);
        b.output("y", y);
        (b.finish(), x, y)
    }

    #[test]
    fn levelize_orders_dependencies() {
        let (n, ..) = sample();
        let lev = levelize(&n).unwrap();
        assert_eq!(lev.order.len(), 2); // the AND and the OR
        for &cell in &lev.order {
            assert!(n.cell(cell).kind().is_combinational());
        }
        assert!(lev.max_level <= 1);
    }

    #[test]
    fn levelize_detects_loops() {
        let mut nl = Netlist::new("loop");
        let (_, a) = nl.add_input("a");
        let w1 = nl.add_net("w1");
        let w2 = nl.add_net("w2");
        nl.add_cell(CellKind::And(2), "g1", &[a, w2], Some(w1));
        nl.add_cell(CellKind::Buf, "g2", &[w1], Some(w2));
        let err = levelize(&nl).unwrap_err();
        assert!(err.cell_name == "g1" || err.cell_name == "g2");
        assert!(err.to_string().contains("combinational loop"));
    }

    #[test]
    fn levelize_deep_chain_has_increasing_levels() {
        let mut b = NetlistBuilder::new("chain");
        let a = b.input("a");
        let mut cur = a;
        for _ in 0..10 {
            cur = b.not(cur);
        }
        b.output("y", cur);
        let n = b.finish();
        let lev = levelize(&n).unwrap();
        assert_eq!(lev.order.len(), 10);
        assert_eq!(lev.max_level, 9);
    }

    #[test]
    fn fanin_cone_stops_at_ff() {
        let (n, _x, y) = sample();
        let cone = fanin_cone(&n, &[y], true);
        // OR gate, the DFF (stop) and the input `a` (stop).
        let kinds: Vec<CellKind> = cone.iter().map(|&c| n.cell(c).kind()).collect();
        assert!(kinds.iter().any(|k| matches!(k, CellKind::Or(_))));
        assert!(kinds.iter().any(|k| k.is_sequential()));
        assert!(!kinds.iter().any(|k| matches!(k, CellKind::And(_))));
    }

    #[test]
    fn fanin_cone_without_stop_crosses_ff() {
        let (n, _x, y) = sample();
        let cone = fanin_cone(&n, &[y], false);
        let kinds: Vec<CellKind> = cone.iter().map(|&c| n.cell(c).kind()).collect();
        assert!(kinds.iter().any(|k| matches!(k, CellKind::And(_))));
    }

    #[test]
    fn fanout_cone_reaches_output() {
        let (n, x, _) = sample();
        let cone = fanout_cone(&n, &[x], true);
        let kinds: Vec<CellKind> = cone.iter().map(|&c| n.cell(c).kind()).collect();
        assert!(kinds.iter().any(|k| k.is_sequential()));
        // Does not cross the FF, so the OR gate is not in the cone.
        assert!(!kinds.iter().any(|k| matches!(k, CellKind::Or(_))));
    }

    #[test]
    fn influence_cone_covers_fanout_and_its_fanin() {
        // Two disjoint halves: a fault on the AND's output must pull in the
        // OR it feeds (fanout), the OR's side input chain (fanin of the
        // cone), and the AND's own inputs — but nothing from the second,
        // unconnected half.
        let mut b = NetlistBuilder::new("cone");
        let a = b.input("a");
        let c = b.input("b");
        let side = b.input("side");
        let x = b.and2(a, c);
        let inv_side = b.not(side);
        let y = b.or2(x, inv_side);
        b.output("y", y);
        // Unconnected half.
        let u = b.input("u");
        let v = b.input("v");
        let z = b.xor2(u, v);
        b.output("z", z);
        let n = b.finish();
        let cone = influence_cone(&n, &[x]);
        let and = n.driver_of(x).unwrap();
        let or = n.driver_of(y).unwrap();
        let inv = n.driver_of(inv_side).unwrap();
        assert!(cone.contains(&or), "fanout cone");
        assert!(cone.contains(&inv), "fanin of the fanout cone");
        assert!(cone.contains(&and), "fanin of the site itself");
        let xor = n.driver_of(z).unwrap();
        assert!(!cone.contains(&xor), "unconnected logic stays out");
        // The cone also includes the stop cells: inputs and the output port.
        for pi in n.primary_inputs() {
            let in_cone = cone.contains(&pi);
            let name = n.cell(pi).name().to_string();
            assert_eq!(in_cone, name != "u" && name != "v", "{name}");
        }
    }

    #[test]
    fn influence_cone_stops_at_sequential_cells() {
        let (n, x, _) = sample();
        let cone = influence_cone(&n, &[x]);
        // The fanout stops at the flip-flop: the OR behind it is not pulled
        // in, but the flop itself (the observation boundary) is.
        let kinds: Vec<CellKind> = cone.iter().map(|&c| n.cell(c).kind()).collect();
        assert!(kinds.iter().any(|k| k.is_sequential()));
        assert!(!kinds.iter().any(|k| matches!(k, CellKind::Or(_))));
    }

    #[test]
    fn cone_extractor_exposes_the_fanout_subset() {
        let (n, x, y) = sample();
        let mut extractor = ConeExtractor::new(&n);
        let cone: Vec<CellId> = extractor.influence_cone_with(&n, &[x]).to_vec();
        let fanout = extractor.fanout_cone().to_vec();
        // The fanout subset is sorted, contained in the influence cone, and
        // matches the standalone fanout_cone query.
        assert!(fanout.windows(2).all(|w| w[0] < w[1]));
        assert!(fanout.iter().all(|c| cone.contains(c)));
        let reference = fanout_cone(&n, &[x], true);
        assert_eq!(
            fanout.iter().copied().collect::<HashSet<_>>(),
            reference,
            "fanout subset must equal the classic fanout cone"
        );
        // The forward-only extraction returns the same subset.
        assert_eq!(extractor.fanout_cone_with(&n, &[x]), &fanout[..]);
        // `x` feeds only the DFF: the fanout subset is just the flop, while
        // the influence cone also holds the AND and its input ports.
        assert!(fanout.len() < cone.len());
        let _ = y;
    }

    #[test]
    fn cone_extractor_is_reusable_and_sorted() {
        let (n, x, y) = sample();
        let mut extractor = ConeExtractor::new(&n);
        let first: Vec<CellId> = extractor.influence_cone_with(&n, &[x]).to_vec();
        let again: Vec<CellId> = extractor.influence_cone_with(&n, &[x]).to_vec();
        assert_eq!(first, again, "extraction must be idempotent");
        assert!(first.windows(2).all(|w| w[0] < w[1]), "sorted, no dupes");
        let mut other = influence_cone(&n, &[y]).into_iter().collect::<Vec<_>>();
        other.sort_unstable();
        assert_eq!(extractor.influence_cone_with(&n, &[y]), &other[..]);
        // And the one-shot form agrees with the reusable form.
        assert_eq!(
            first
                .iter()
                .copied()
                .collect::<std::collections::HashSet<_>>(),
            influence_cone(&n, &[x])
        );
    }

    #[test]
    fn reachable_nets_crosses_comb_only() {
        let (n, x, y) = sample();
        let reach = reachable_nets(&n, &[x]);
        assert!(reach.contains(&x));
        assert!(!reach.contains(&y), "must not cross the flip-flop");
        let q = n
            .sequential_cells()
            .first()
            .and_then(|&ff| n.output_net(ff))
            .unwrap();
        let reach_q = reachable_nets(&n, &[q]);
        assert!(reach_q.contains(&y));
    }
}
