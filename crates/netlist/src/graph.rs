//! Graph algorithms over a [`Netlist`]: levelization of the combinational
//! logic, fan-in / fan-out cone extraction and reachability queries.
//!
//! Flip-flop outputs, tie cells and primary inputs are treated as sources;
//! flip-flop inputs and primary outputs are sinks. This "cuts" the design at
//! the sequential elements so the combinational portion is a DAG.

use crate::{CellId, CellKind, NetId, Netlist};
use std::collections::{HashSet, VecDeque};
use std::fmt;

/// Error returned when the combinational logic contains a cycle.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CombinationalLoop {
    /// A cell that participates in the loop.
    pub cell: CellId,
    /// Instance name of that cell.
    pub cell_name: String,
}

impl fmt::Display for CombinationalLoop {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "combinational loop detected through cell `{}`",
            self.cell_name
        )
    }
}

impl std::error::Error for CombinationalLoop {}

/// Result of levelizing a netlist: a valid topological evaluation order of
/// the combinational cells plus per-cell logic depth.
#[derive(Clone, Debug)]
pub struct Levelization {
    /// Combinational cells (gates, muxes, buffers) in topological order.
    pub order: Vec<CellId>,
    /// Logic level of every cell (indexed by `CellId::index()`); sources are
    /// level 0, a gate is 1 + max level of its driver cells. Sequential and
    /// port cells keep level 0.
    pub level: Vec<u32>,
    /// Maximum combinational depth of the design.
    pub max_level: u32,
}

/// Computes a topological order of the live combinational cells.
///
/// # Errors
///
/// Returns [`CombinationalLoop`] if the combinational logic is cyclic.
pub fn levelize(netlist: &Netlist) -> Result<Levelization, CombinationalLoop> {
    let num_cells = netlist.num_cells();
    let mut level = vec![0u32; num_cells];
    let mut pending = vec![0u32; num_cells];
    let mut order = Vec::new();
    let mut queue = VecDeque::new();
    let mut comb_total = 0usize;

    for (id, cell) in netlist.live_cells() {
        if !cell.kind().is_combinational() {
            continue;
        }
        comb_total += 1;
        // Count how many of this cell's input nets are driven by another
        // *combinational* cell; those must be evaluated first.
        let mut deps = 0u32;
        for &net in cell.inputs() {
            if let Some(driver) = netlist.driver_of(net) {
                if netlist.cell(driver).kind().is_combinational() && !netlist.cell(driver).is_dead()
                {
                    deps += 1;
                }
            }
        }
        pending[id.index()] = deps;
        if deps == 0 {
            queue.push_back(id);
        }
    }

    let mut max_level = 0u32;
    while let Some(id) = queue.pop_front() {
        order.push(id);
        let my_level = level[id.index()];
        if let Some(out) = netlist.output_net(id) {
            for load in netlist.loads_of(out) {
                let sink = load.cell;
                let sink_cell = netlist.cell(sink);
                if sink_cell.is_dead() || !sink_cell.kind().is_combinational() {
                    continue;
                }
                level[sink.index()] = level[sink.index()].max(my_level + 1);
                max_level = max_level.max(level[sink.index()]);
                pending[sink.index()] -= 1;
                if pending[sink.index()] == 0 {
                    queue.push_back(sink);
                }
            }
        }
    }

    if order.len() != comb_total {
        // Some cell never reached zero pending dependencies: a loop.
        let culprit = netlist
            .live_cells()
            .find(|(id, c)| c.kind().is_combinational() && pending[id.index()] > 0)
            .map(|(id, c)| (id, c.name().to_string()))
            .expect("loop detected but no culprit found");
        return Err(CombinationalLoop {
            cell: culprit.0,
            cell_name: culprit.1,
        });
    }

    Ok(Levelization {
        order,
        level,
        max_level,
    })
}

/// Returns every live cell in the transitive fan-in of `nets`, stopping at
/// (and excluding the fan-in of) sequential cells, tie cells and primary
/// inputs when `stop_at_sequential` is set. The stopping cells themselves are
/// included in the result.
pub fn fanin_cone(netlist: &Netlist, nets: &[NetId], stop_at_sequential: bool) -> HashSet<CellId> {
    let mut seen: HashSet<CellId> = HashSet::new();
    let mut stack: Vec<NetId> = nets.to_vec();
    while let Some(net) = stack.pop() {
        let Some(driver) = netlist.driver_of(net) else {
            continue;
        };
        if netlist.cell(driver).is_dead() || !seen.insert(driver) {
            continue;
        }
        let kind = netlist.cell(driver).kind();
        if stop_at_sequential && (kind.is_sequential() || kind.is_tie() || kind == CellKind::Input)
        {
            continue;
        }
        for &input in netlist.cell(driver).inputs() {
            stack.push(input);
        }
    }
    seen
}

/// Returns every live cell in the transitive fan-out of `nets`, stopping at
/// (but including) sequential cells and primary outputs when
/// `stop_at_sequential` is set.
pub fn fanout_cone(netlist: &Netlist, nets: &[NetId], stop_at_sequential: bool) -> HashSet<CellId> {
    let mut seen: HashSet<CellId> = HashSet::new();
    let mut stack: Vec<NetId> = nets.to_vec();
    while let Some(net) = stack.pop() {
        for load in netlist.loads_of(net) {
            let sink = load.cell;
            if netlist.cell(sink).is_dead() || !seen.insert(sink) {
                continue;
            }
            let kind = netlist.cell(sink).kind();
            if stop_at_sequential && (kind.is_sequential() || kind == CellKind::Output) {
                continue;
            }
            if let Some(out) = netlist.output_net(sink) {
                stack.push(out);
            }
        }
    }
    seen
}

/// Returns the set of nets reachable (forward) from `nets`, crossing
/// combinational cells only.
pub fn reachable_nets(netlist: &Netlist, nets: &[NetId]) -> HashSet<NetId> {
    let mut seen: HashSet<NetId> = nets.iter().copied().collect();
    let mut stack: Vec<NetId> = nets.to_vec();
    while let Some(net) = stack.pop() {
        for load in netlist.loads_of(net) {
            let sink = load.cell;
            let cell = netlist.cell(sink);
            if cell.is_dead() || !cell.kind().is_combinational() {
                continue;
            }
            if let Some(out) = netlist.output_net(sink) {
                if seen.insert(out) {
                    stack.push(out);
                }
            }
        }
    }
    seen
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NetlistBuilder;

    fn sample() -> (Netlist, NetId, NetId) {
        let mut b = NetlistBuilder::new("t");
        let a = b.input("a");
        let c = b.input("b");
        let ck = b.input("ck");
        let x = b.and2(a, c);
        let q = b.dff(x, ck);
        let y = b.or2(q, a);
        b.output("y", y);
        (b.finish(), x, y)
    }

    #[test]
    fn levelize_orders_dependencies() {
        let (n, ..) = sample();
        let lev = levelize(&n).unwrap();
        assert_eq!(lev.order.len(), 2); // the AND and the OR
        for &cell in &lev.order {
            assert!(n.cell(cell).kind().is_combinational());
        }
        assert!(lev.max_level <= 1);
    }

    #[test]
    fn levelize_detects_loops() {
        let mut nl = Netlist::new("loop");
        let (_, a) = nl.add_input("a");
        let w1 = nl.add_net("w1");
        let w2 = nl.add_net("w2");
        nl.add_cell(CellKind::And(2), "g1", &[a, w2], Some(w1));
        nl.add_cell(CellKind::Buf, "g2", &[w1], Some(w2));
        let err = levelize(&nl).unwrap_err();
        assert!(err.cell_name == "g1" || err.cell_name == "g2");
        assert!(err.to_string().contains("combinational loop"));
    }

    #[test]
    fn levelize_deep_chain_has_increasing_levels() {
        let mut b = NetlistBuilder::new("chain");
        let a = b.input("a");
        let mut cur = a;
        for _ in 0..10 {
            cur = b.not(cur);
        }
        b.output("y", cur);
        let n = b.finish();
        let lev = levelize(&n).unwrap();
        assert_eq!(lev.order.len(), 10);
        assert_eq!(lev.max_level, 9);
    }

    #[test]
    fn fanin_cone_stops_at_ff() {
        let (n, _x, y) = sample();
        let cone = fanin_cone(&n, &[y], true);
        // OR gate, the DFF (stop) and the input `a` (stop).
        let kinds: Vec<CellKind> = cone.iter().map(|&c| n.cell(c).kind()).collect();
        assert!(kinds.iter().any(|k| matches!(k, CellKind::Or(_))));
        assert!(kinds.iter().any(|k| k.is_sequential()));
        assert!(!kinds.iter().any(|k| matches!(k, CellKind::And(_))));
    }

    #[test]
    fn fanin_cone_without_stop_crosses_ff() {
        let (n, _x, y) = sample();
        let cone = fanin_cone(&n, &[y], false);
        let kinds: Vec<CellKind> = cone.iter().map(|&c| n.cell(c).kind()).collect();
        assert!(kinds.iter().any(|k| matches!(k, CellKind::And(_))));
    }

    #[test]
    fn fanout_cone_reaches_output() {
        let (n, x, _) = sample();
        let cone = fanout_cone(&n, &[x], true);
        let kinds: Vec<CellKind> = cone.iter().map(|&c| n.cell(c).kind()).collect();
        assert!(kinds.iter().any(|k| k.is_sequential()));
        // Does not cross the FF, so the OR gate is not in the cone.
        assert!(!kinds.iter().any(|k| matches!(k, CellKind::Or(_))));
    }

    #[test]
    fn reachable_nets_crosses_comb_only() {
        let (n, x, y) = sample();
        let reach = reachable_nets(&n, &[x]);
        assert!(reach.contains(&x));
        assert!(!reach.contains(&y), "must not cross the flip-flop");
        let q = n
            .sequential_cells()
            .first()
            .and_then(|&ff| n.output_net(ff))
            .unwrap();
        let reach_q = reachable_nets(&n, &[q]);
        assert!(reach_q.contains(&y));
    }
}
