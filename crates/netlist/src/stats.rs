//! Design statistics: cell counts per category, pin counts and the size of
//! the stuck-at fault universe implied by the pin-fault model.

use crate::{CellKind, Netlist};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Summary statistics of a netlist.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct NetlistStats {
    /// Live combinational gates (including buffers, inverters and muxes).
    pub combinational_cells: usize,
    /// Live flip-flops (plain DFF).
    pub flip_flops: usize,
    /// Live mux-scan flip-flops.
    pub scan_flip_flops: usize,
    /// Tie cells.
    pub tie_cells: usize,
    /// Primary inputs.
    pub primary_inputs: usize,
    /// Primary outputs.
    pub primary_outputs: usize,
    /// Total live cells.
    pub total_cells: usize,
    /// Total nets.
    pub nets: usize,
    /// Total connected cell pins (inputs + outputs) over live cells: each is
    /// two stuck-at fault sites under the uncollapsed pin-fault model.
    pub pins: usize,
    /// Maximum combinational logic depth (0 if the design is purely
    /// sequential or levelization failed).
    pub max_logic_depth: u32,
}

impl NetlistStats {
    /// Number of uncollapsed stuck-at faults implied by the pin-fault model
    /// (two per pin).
    pub fn stuck_at_faults(&self) -> usize {
        self.pins * 2
    }
}

impl fmt::Display for NetlistStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "cells          : {}", self.total_cells)?;
        writeln!(f, "  combinational: {}", self.combinational_cells)?;
        writeln!(f, "  flip-flops   : {}", self.flip_flops)?;
        writeln!(f, "  scan FFs     : {}", self.scan_flip_flops)?;
        writeln!(f, "  ties         : {}", self.tie_cells)?;
        writeln!(f, "primary inputs : {}", self.primary_inputs)?;
        writeln!(f, "primary outputs: {}", self.primary_outputs)?;
        writeln!(f, "nets           : {}", self.nets)?;
        writeln!(f, "pins           : {}", self.pins)?;
        writeln!(f, "stuck-at faults: {}", self.stuck_at_faults())?;
        write!(f, "logic depth    : {}", self.max_logic_depth)
    }
}

/// Computes [`NetlistStats`] for a design.
pub fn stats(netlist: &Netlist) -> NetlistStats {
    let mut s = NetlistStats {
        nets: netlist.num_nets(),
        ..NetlistStats::default()
    };
    for (_, cell) in netlist.live_cells() {
        s.total_cells += 1;
        match cell.kind() {
            CellKind::Input => s.primary_inputs += 1,
            CellKind::Output => s.primary_outputs += 1,
            CellKind::Tie0 | CellKind::Tie1 => s.tie_cells += 1,
            CellKind::Dff { .. } => s.flip_flops += 1,
            CellKind::Sdff { .. } => s.scan_flip_flops += 1,
            _ => s.combinational_cells += 1,
        }
        s.pins += cell.inputs().len() + usize::from(cell.output().is_some());
    }
    s.max_logic_depth = crate::graph::levelize(netlist)
        .map(|l| l.max_level)
        .unwrap_or(0);
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NetlistBuilder;

    #[test]
    fn counts_are_consistent() {
        let mut b = NetlistBuilder::new("t");
        let a = b.input("a");
        let c = b.input("b");
        let ck = b.input("ck");
        let x = b.and2(a, c);
        let q = b.dff(x, ck);
        let z = b.tie0();
        let y = b.or2(q, z);
        let y2 = b.and2(y, x);
        b.output("y", y2);
        let n = b.finish();
        let s = stats(&n);
        assert_eq!(s.primary_inputs, 3);
        assert_eq!(s.primary_outputs, 1);
        assert_eq!(s.combinational_cells, 3);
        assert_eq!(s.flip_flops, 1);
        assert_eq!(s.scan_flip_flops, 0);
        assert_eq!(s.tie_cells, 1);
        assert_eq!(
            s.total_cells,
            s.primary_inputs
                + s.primary_outputs
                + s.combinational_cells
                + s.flip_flops
                + s.tie_cells
        );
        // pins: 3 inputs (1 out each) + and(3) + dff(3) + tie(1) + or(3) + and(3) + output(1)
        assert_eq!(s.pins, 3 + 3 + 3 + 1 + 3 + 3 + 1);
        assert_eq!(s.stuck_at_faults(), s.pins * 2);
        assert!(s.max_logic_depth >= 1);
        let text = s.to_string();
        assert!(text.contains("stuck-at faults"));
    }

    #[test]
    fn dead_cells_excluded() {
        let mut b = NetlistBuilder::new("t");
        let a = b.input("a");
        let x = b.not(a);
        b.output("y", x);
        let mut n = b.finish();
        let before = stats(&n).total_cells;
        let inv = n.driver_of(x).unwrap();
        n.remove_cell(inv);
        assert_eq!(stats(&n).total_cells, before - 1);
    }
}
