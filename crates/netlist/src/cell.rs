//! Cell library: the primitive gate, flip-flop and port pseudo-cell kinds a
//! [`Netlist`](crate::Netlist) is made of, together with their pin naming and
//! two-valued evaluation functions.

use serde::{Deserialize, Serialize};
use std::borrow::Cow;
use std::fmt;

/// Asynchronous reset configuration of a flip-flop.
///
/// A reset always forces the stored value to `0`; only its polarity varies.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum Reset {
    /// Reset pin is active low (`RSTN = 0` clears the flip-flop).
    ActiveLow,
    /// Reset pin is active high (`RST = 1` clears the flip-flop).
    ActiveHigh,
}

/// The primitive kinds of cells supported by the netlist data model.
///
/// The library is deliberately small — the standard set a structural test
/// tool needs — but complete enough to express every circuit described by
/// the DATE 2013 paper: plain gates, a 2-to-1 multiplexer, D flip-flops with
/// optional asynchronous reset, mux-scan flip-flops (`Sdff`), tie cells and
/// port pseudo-cells.
///
/// Multi-input gates carry their arity (2..=32).
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum CellKind {
    /// Primary input pseudo-cell: no input pins, drives one net.
    Input,
    /// Primary output pseudo-cell: one input pin, drives nothing.
    Output,
    /// Constant logic 0 driver.
    Tie0,
    /// Constant logic 1 driver.
    Tie1,
    /// Non-inverting buffer.
    Buf,
    /// Inverter.
    Not,
    /// N-input AND gate.
    And(u8),
    /// N-input NAND gate.
    Nand(u8),
    /// N-input OR gate.
    Or(u8),
    /// N-input NOR gate.
    Nor(u8),
    /// N-input XOR gate.
    Xor(u8),
    /// N-input XNOR gate.
    Xnor(u8),
    /// 2-to-1 multiplexer; pins `D0`, `D1`, `S`, output `Y = S ? D1 : D0`.
    Mux2,
    /// D flip-flop; pins `D`, `CK` and optionally a reset pin.
    Dff {
        /// Optional asynchronous reset (clears to 0).
        reset: Option<Reset>,
    },
    /// Mux-scan D flip-flop; pins `D`, `SI`, `SE`, `CK` and optionally a
    /// reset pin. When `SE = 1` the flip-flop captures `SI`, otherwise `D`.
    Sdff {
        /// Optional asynchronous reset (clears to 0).
        reset: Option<Reset>,
    },
}

impl CellKind {
    /// Number of input pins of a cell of this kind.
    pub fn num_inputs(self) -> usize {
        match self {
            CellKind::Input | CellKind::Tie0 | CellKind::Tie1 => 0,
            CellKind::Output | CellKind::Buf | CellKind::Not => 1,
            CellKind::And(n)
            | CellKind::Nand(n)
            | CellKind::Or(n)
            | CellKind::Nor(n)
            | CellKind::Xor(n)
            | CellKind::Xnor(n) => n as usize,
            CellKind::Mux2 => 3,
            CellKind::Dff { reset } => 2 + usize::from(reset.is_some()),
            CellKind::Sdff { reset } => 4 + usize::from(reset.is_some()),
        }
    }

    /// Whether a cell of this kind drives a net (everything except `Output`).
    pub fn has_output(self) -> bool {
        !matches!(self, CellKind::Output)
    }

    /// Whether this kind is a state-holding element (flip-flop).
    pub fn is_sequential(self) -> bool {
        matches!(self, CellKind::Dff { .. } | CellKind::Sdff { .. })
    }

    /// Whether this kind is a constant driver.
    pub fn is_tie(self) -> bool {
        matches!(self, CellKind::Tie0 | CellKind::Tie1)
    }

    /// Whether this kind is a port pseudo-cell.
    pub fn is_port(self) -> bool {
        matches!(self, CellKind::Input | CellKind::Output)
    }

    /// Whether this kind is a combinational gate (has an output, is neither
    /// sequential, nor a tie, nor a port).
    pub fn is_combinational(self) -> bool {
        self.has_output() && !self.is_sequential() && !self.is_tie() && !self.is_port()
    }

    /// The reset configuration for flip-flop kinds, `None` otherwise.
    pub fn reset(self) -> Option<Reset> {
        match self {
            CellKind::Dff { reset } | CellKind::Sdff { reset } => reset,
            _ => None,
        }
    }

    /// Index of the clock pin for sequential kinds.
    pub fn clock_pin(self) -> Option<crate::PinIndex> {
        match self {
            CellKind::Dff { .. } => Some(1),
            CellKind::Sdff { .. } => Some(3),
            _ => None,
        }
    }

    /// Index of the data (`D`) pin for sequential kinds.
    pub fn data_pin(self) -> Option<crate::PinIndex> {
        match self {
            CellKind::Dff { .. } | CellKind::Sdff { .. } => Some(0),
            _ => None,
        }
    }

    /// Index of the scan-in (`SI`) pin for `Sdff`, `None` otherwise.
    pub fn scan_in_pin(self) -> Option<crate::PinIndex> {
        match self {
            CellKind::Sdff { .. } => Some(1),
            _ => None,
        }
    }

    /// Index of the scan-enable (`SE`) pin for `Sdff`, `None` otherwise.
    pub fn scan_enable_pin(self) -> Option<crate::PinIndex> {
        match self {
            CellKind::Sdff { .. } => Some(2),
            _ => None,
        }
    }

    /// Index of the reset pin for sequential kinds that have one.
    pub fn reset_pin(self) -> Option<crate::PinIndex> {
        match self {
            CellKind::Dff { reset: Some(_) } => Some(2),
            CellKind::Sdff { reset: Some(_) } => Some(4),
            _ => None,
        }
    }

    /// Name of the `index`-th input pin.
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.num_inputs()`.
    pub fn input_pin_name(self, index: usize) -> Cow<'static, str> {
        assert!(
            index < self.num_inputs(),
            "pin index {index} out of range for {self:?}"
        );
        match self {
            CellKind::Output | CellKind::Buf | CellKind::Not => Cow::Borrowed("A"),
            CellKind::And(_)
            | CellKind::Nand(_)
            | CellKind::Or(_)
            | CellKind::Nor(_)
            | CellKind::Xor(_)
            | CellKind::Xnor(_) => Cow::Owned(format!("A{index}")),
            CellKind::Mux2 => Cow::Borrowed(["D0", "D1", "S"][index]),
            CellKind::Dff { reset } => {
                let pins: &[&'static str] = if reset.is_some() {
                    &["D", "CK", "RST"]
                } else {
                    &["D", "CK"]
                };
                Cow::Borrowed(pins[index])
            }
            CellKind::Sdff { reset } => {
                let pins: &[&'static str] = if reset.is_some() {
                    &["D", "SI", "SE", "CK", "RST"]
                } else {
                    &["D", "SI", "SE", "CK"]
                };
                Cow::Borrowed(pins[index])
            }
            CellKind::Input | CellKind::Tie0 | CellKind::Tie1 => unreachable!(),
        }
    }

    /// Name of the output pin (`Y` for gates, `Q` for flip-flops).
    pub fn output_pin_name(self) -> &'static str {
        match self {
            CellKind::Dff { .. } | CellKind::Sdff { .. } => "Q",
            _ => "Y",
        }
    }

    /// The library cell name used by the structural Verilog reader/writer.
    pub fn lib_name(self) -> Cow<'static, str> {
        match self {
            CellKind::Input => Cow::Borrowed("INPUT"),
            CellKind::Output => Cow::Borrowed("OUTPUT"),
            CellKind::Tie0 => Cow::Borrowed("TIE0"),
            CellKind::Tie1 => Cow::Borrowed("TIE1"),
            CellKind::Buf => Cow::Borrowed("BUF"),
            CellKind::Not => Cow::Borrowed("INV"),
            CellKind::And(n) => Cow::Owned(format!("AND{n}")),
            CellKind::Nand(n) => Cow::Owned(format!("NAND{n}")),
            CellKind::Or(n) => Cow::Owned(format!("OR{n}")),
            CellKind::Nor(n) => Cow::Owned(format!("NOR{n}")),
            CellKind::Xor(n) => Cow::Owned(format!("XOR{n}")),
            CellKind::Xnor(n) => Cow::Owned(format!("XNOR{n}")),
            CellKind::Mux2 => Cow::Borrowed("MUX2"),
            CellKind::Dff { reset: None } => Cow::Borrowed("DFF"),
            CellKind::Dff {
                reset: Some(Reset::ActiveLow),
            } => Cow::Borrowed("DFFRN"),
            CellKind::Dff {
                reset: Some(Reset::ActiveHigh),
            } => Cow::Borrowed("DFFR"),
            CellKind::Sdff { reset: None } => Cow::Borrowed("SDFF"),
            CellKind::Sdff {
                reset: Some(Reset::ActiveLow),
            } => Cow::Borrowed("SDFFRN"),
            CellKind::Sdff {
                reset: Some(Reset::ActiveHigh),
            } => Cow::Borrowed("SDFFR"),
        }
    }

    /// Parses a library cell name back into a kind (inverse of [`lib_name`]).
    ///
    /// Returns `None` for unknown names.
    ///
    /// [`lib_name`]: CellKind::lib_name
    pub fn from_lib_name(name: &str) -> Option<CellKind> {
        let fixed = match name {
            "INPUT" => Some(CellKind::Input),
            "OUTPUT" => Some(CellKind::Output),
            "TIE0" => Some(CellKind::Tie0),
            "TIE1" => Some(CellKind::Tie1),
            "BUF" => Some(CellKind::Buf),
            "INV" | "NOT" => Some(CellKind::Not),
            "MUX2" => Some(CellKind::Mux2),
            "DFF" => Some(CellKind::Dff { reset: None }),
            "DFFRN" => Some(CellKind::Dff {
                reset: Some(Reset::ActiveLow),
            }),
            "DFFR" => Some(CellKind::Dff {
                reset: Some(Reset::ActiveHigh),
            }),
            "SDFF" => Some(CellKind::Sdff { reset: None }),
            "SDFFRN" => Some(CellKind::Sdff {
                reset: Some(Reset::ActiveLow),
            }),
            "SDFFR" => Some(CellKind::Sdff {
                reset: Some(Reset::ActiveHigh),
            }),
            _ => None,
        };
        if fixed.is_some() {
            return fixed;
        }
        let parse_arity = |prefix: &str| -> Option<u8> {
            name.strip_prefix(prefix)?
                .parse::<u8>()
                .ok()
                .filter(|&n| (2..=32).contains(&n))
        };
        if let Some(n) = parse_arity("NAND") {
            return Some(CellKind::Nand(n));
        }
        if let Some(n) = parse_arity("XNOR") {
            return Some(CellKind::Xnor(n));
        }
        if let Some(n) = parse_arity("AND") {
            return Some(CellKind::And(n));
        }
        if let Some(n) = parse_arity("NOR") {
            return Some(CellKind::Nor(n));
        }
        if let Some(n) = parse_arity("XOR") {
            return Some(CellKind::Xor(n));
        }
        if let Some(n) = parse_arity("OR") {
            return Some(CellKind::Or(n));
        }
        None
    }

    /// Two-valued evaluation of a combinational cell.
    ///
    /// Returns `None` for sequential cells and for `Output` pseudo-cells
    /// (which do not produce a value). `Input` cells have no inputs and
    /// cannot be evaluated here either.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len() != self.num_inputs()`.
    pub fn eval_bool(self, inputs: &[bool]) -> Option<bool> {
        assert_eq!(
            inputs.len(),
            self.num_inputs(),
            "wrong number of input values for {self:?}"
        );
        match self {
            CellKind::Tie0 => Some(false),
            CellKind::Tie1 => Some(true),
            CellKind::Buf => Some(inputs[0]),
            CellKind::Not => Some(!inputs[0]),
            CellKind::And(_) => Some(inputs.iter().all(|&v| v)),
            CellKind::Nand(_) => Some(!inputs.iter().all(|&v| v)),
            CellKind::Or(_) => Some(inputs.iter().any(|&v| v)),
            CellKind::Nor(_) => Some(!inputs.iter().any(|&v| v)),
            CellKind::Xor(_) => Some(inputs.iter().fold(false, |acc, &v| acc ^ v)),
            CellKind::Xnor(_) => Some(!inputs.iter().fold(false, |acc, &v| acc ^ v)),
            CellKind::Mux2 => Some(if inputs[2] { inputs[1] } else { inputs[0] }),
            CellKind::Input | CellKind::Output | CellKind::Dff { .. } | CellKind::Sdff { .. } => {
                None
            }
        }
    }

    /// The controlling value of the gate, if it has one (AND/NAND → 0,
    /// OR/NOR → 1). Used by fault collapsing and SCOAP.
    pub fn controlling_value(self) -> Option<bool> {
        match self {
            CellKind::And(_) | CellKind::Nand(_) => Some(false),
            CellKind::Or(_) | CellKind::Nor(_) => Some(true),
            _ => None,
        }
    }

    /// Whether the gate output inverts relative to its inputs (NAND, NOR,
    /// XNOR, NOT).
    pub fn is_inverting(self) -> Option<bool> {
        match self {
            CellKind::And(_) | CellKind::Or(_) | CellKind::Buf => Some(false),
            CellKind::Nand(_) | CellKind::Nor(_) | CellKind::Not => Some(true),
            CellKind::Xor(_) => Some(false),
            CellKind::Xnor(_) => Some(true),
            _ => None,
        }
    }
}

impl fmt::Display for CellKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.lib_name())
    }
}

/// User-assignable attributes attached to a cell.
///
/// The on-line-untestability identification flow uses these to locate
/// functional groups ("agu", "btb", "debug", …) and address-holding
/// registers without re-deriving them from names.
#[derive(Clone, PartialEq, Eq, Debug, Default, Serialize, Deserialize)]
pub struct CellAttrs {
    /// Functional group this cell belongs to (e.g. `"alu"`, `"agu.adder"`,
    /// `"debug"`, `"btb"`). Empty string means "no group".
    pub group: String,
    /// For flip-flops that store one bit of a memory address: the bit index
    /// within the address word.
    pub address_bit: Option<u32>,
}

impl CellAttrs {
    /// Attributes with only a group set.
    pub fn with_group(group: impl Into<String>) -> Self {
        CellAttrs {
            group: group.into(),
            address_bit: None,
        }
    }

    /// True if the cell's group equals `group` or is nested below it
    /// (dot-separated, e.g. `"agu.adder"` is in group `"agu"`).
    pub fn in_group(&self, group: &str) -> bool {
        self.group == group
            || (self.group.len() > group.len()
                && self.group.starts_with(group)
                && self.group.as_bytes()[group.len()] == b'.')
    }
}

/// A cell instance inside a [`Netlist`](crate::Netlist).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Cell {
    pub(crate) kind: CellKind,
    pub(crate) name: String,
    pub(crate) inputs: Vec<crate::NetId>,
    pub(crate) output: Option<crate::NetId>,
    pub(crate) attrs: CellAttrs,
    pub(crate) dead: bool,
}

impl Cell {
    /// The primitive kind of this cell.
    pub fn kind(&self) -> CellKind {
        self.kind
    }

    /// The instance name of this cell.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The nets connected to the input pins, in pin order.
    pub fn inputs(&self) -> &[crate::NetId] {
        &self.inputs
    }

    /// The net driven by this cell, if any.
    pub fn output(&self) -> Option<crate::NetId> {
        self.output
    }

    /// The attributes attached to this cell.
    pub fn attrs(&self) -> &CellAttrs {
        &self.attrs
    }

    /// Whether the cell was removed from the design by a manipulation step.
    pub fn is_dead(&self) -> bool {
        self.dead
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pin_counts() {
        assert_eq!(CellKind::Input.num_inputs(), 0);
        assert_eq!(CellKind::Output.num_inputs(), 1);
        assert_eq!(CellKind::And(3).num_inputs(), 3);
        assert_eq!(CellKind::Mux2.num_inputs(), 3);
        assert_eq!(CellKind::Dff { reset: None }.num_inputs(), 2);
        assert_eq!(
            CellKind::Dff {
                reset: Some(Reset::ActiveLow)
            }
            .num_inputs(),
            3
        );
        assert_eq!(CellKind::Sdff { reset: None }.num_inputs(), 4);
        assert_eq!(
            CellKind::Sdff {
                reset: Some(Reset::ActiveHigh)
            }
            .num_inputs(),
            5
        );
    }

    #[test]
    fn classification_predicates() {
        assert!(CellKind::Dff { reset: None }.is_sequential());
        assert!(!CellKind::And(2).is_sequential());
        assert!(CellKind::Tie1.is_tie());
        assert!(CellKind::Input.is_port());
        assert!(CellKind::Xor(2).is_combinational());
        assert!(!CellKind::Tie0.is_combinational());
        assert!(!CellKind::Output.has_output());
    }

    #[test]
    fn pin_names() {
        assert_eq!(CellKind::Mux2.input_pin_name(2), "S");
        assert_eq!(CellKind::And(4).input_pin_name(3), "A3");
        let sdff = CellKind::Sdff {
            reset: Some(Reset::ActiveLow),
        };
        assert_eq!(sdff.input_pin_name(1), "SI");
        assert_eq!(sdff.input_pin_name(2), "SE");
        assert_eq!(sdff.input_pin_name(4), "RST");
        assert_eq!(sdff.output_pin_name(), "Q");
        assert_eq!(CellKind::Or(2).output_pin_name(), "Y");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn pin_name_out_of_range_panics() {
        CellKind::Buf.input_pin_name(1);
    }

    #[test]
    fn lib_name_roundtrip() {
        let kinds = [
            CellKind::Input,
            CellKind::Output,
            CellKind::Tie0,
            CellKind::Tie1,
            CellKind::Buf,
            CellKind::Not,
            CellKind::And(2),
            CellKind::Nand(5),
            CellKind::Or(3),
            CellKind::Nor(2),
            CellKind::Xor(2),
            CellKind::Xnor(4),
            CellKind::Mux2,
            CellKind::Dff { reset: None },
            CellKind::Dff {
                reset: Some(Reset::ActiveLow),
            },
            CellKind::Dff {
                reset: Some(Reset::ActiveHigh),
            },
            CellKind::Sdff { reset: None },
            CellKind::Sdff {
                reset: Some(Reset::ActiveLow),
            },
            CellKind::Sdff {
                reset: Some(Reset::ActiveHigh),
            },
        ];
        for kind in kinds {
            let name = kind.lib_name();
            assert_eq!(
                CellKind::from_lib_name(&name),
                Some(kind),
                "roundtrip {name}"
            );
        }
        assert_eq!(CellKind::from_lib_name("FOO"), None);
        assert_eq!(CellKind::from_lib_name("AND1"), None);
        assert_eq!(CellKind::from_lib_name("AND99"), None);
    }

    #[test]
    fn eval_basic_gates() {
        assert_eq!(CellKind::And(2).eval_bool(&[true, true]), Some(true));
        assert_eq!(CellKind::And(2).eval_bool(&[true, false]), Some(false));
        assert_eq!(CellKind::Nand(2).eval_bool(&[true, true]), Some(false));
        assert_eq!(CellKind::Or(3).eval_bool(&[false, false, true]), Some(true));
        assert_eq!(CellKind::Nor(2).eval_bool(&[false, false]), Some(true));
        assert_eq!(CellKind::Xor(3).eval_bool(&[true, true, true]), Some(true));
        assert_eq!(CellKind::Xnor(2).eval_bool(&[true, false]), Some(false));
        assert_eq!(CellKind::Not.eval_bool(&[true]), Some(false));
        assert_eq!(CellKind::Buf.eval_bool(&[true]), Some(true));
        assert_eq!(CellKind::Tie0.eval_bool(&[]), Some(false));
        assert_eq!(CellKind::Tie1.eval_bool(&[]), Some(true));
        assert_eq!(
            CellKind::Mux2.eval_bool(&[false, true, true]),
            Some(true),
            "S=1 selects D1"
        );
        assert_eq!(CellKind::Mux2.eval_bool(&[false, true, false]), Some(false));
        assert_eq!(
            CellKind::Dff { reset: None }.eval_bool(&[true, false]),
            None
        );
    }

    #[test]
    fn controlling_values() {
        assert_eq!(CellKind::And(2).controlling_value(), Some(false));
        assert_eq!(CellKind::Nor(2).controlling_value(), Some(true));
        assert_eq!(CellKind::Xor(2).controlling_value(), None);
    }

    #[test]
    fn group_nesting() {
        let attrs = CellAttrs::with_group("agu.adder");
        assert!(attrs.in_group("agu"));
        assert!(attrs.in_group("agu.adder"));
        assert!(!attrs.in_group("ag"));
        assert!(!attrs.in_group("btb"));
    }

    #[test]
    fn special_pin_indices() {
        let sdff = CellKind::Sdff { reset: None };
        assert_eq!(sdff.data_pin(), Some(0));
        assert_eq!(sdff.scan_in_pin(), Some(1));
        assert_eq!(sdff.scan_enable_pin(), Some(2));
        assert_eq!(sdff.clock_pin(), Some(3));
        assert_eq!(sdff.reset_pin(), None);
        let dffr = CellKind::Dff {
            reset: Some(Reset::ActiveHigh),
        };
        assert_eq!(dffr.reset_pin(), Some(2));
        assert_eq!(CellKind::And(2).data_pin(), None);
    }
}
