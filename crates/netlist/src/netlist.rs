//! The flat, arena-indexed gate-level netlist.

use crate::{Cell, CellAttrs, CellId, CellKind, NetId, PinIndex, PinRef};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// A single-bit wire connecting exactly one driver to any number of loads.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Net {
    pub(crate) name: String,
    pub(crate) driver: Option<CellId>,
    pub(crate) loads: Vec<PinRef>,
}

impl Net {
    /// The name of this net.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The cell driving this net, if any (a net left floating by a
    /// manipulation step has no driver).
    pub fn driver(&self) -> Option<CellId> {
        self.driver
    }

    /// The input pins this net fans out to.
    pub fn loads(&self) -> &[PinRef] {
        &self.loads
    }
}

/// Errors produced by structural editing operations on a [`Netlist`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum NetlistError {
    /// A net was about to get a second driver.
    MultipleDrivers {
        /// The net that already has a driver.
        net: String,
    },
    /// The number of connected nets does not match the cell kind's pin count.
    PinCountMismatch {
        /// Instance name of the offending cell.
        cell: String,
        /// Pins the kind expects.
        expected: usize,
        /// Nets that were supplied.
        got: usize,
    },
    /// A cell kind that requires an output was created without one, or vice
    /// versa.
    OutputMismatch {
        /// Instance name of the offending cell.
        cell: String,
    },
}

impl fmt::Display for NetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetlistError::MultipleDrivers { net } => {
                write!(f, "net `{net}` already has a driver")
            }
            NetlistError::PinCountMismatch {
                cell,
                expected,
                got,
            } => write!(
                f,
                "cell `{cell}` expects {expected} input pins but {got} nets were connected"
            ),
            NetlistError::OutputMismatch { cell } => {
                write!(f, "cell `{cell}` output connection does not match its kind")
            }
        }
    }
}

impl std::error::Error for NetlistError {}

/// A flat gate-level netlist: an arena of [`Cell`]s and [`Net`]s plus the
/// primary port lists.
///
/// # Examples
///
/// ```
/// use netlist::{Netlist, CellKind};
///
/// let mut n = Netlist::new("half_adder");
/// let (_, a) = n.add_input("a");
/// let (_, b) = n.add_input("b");
/// let sum = n.add_net("sum");
/// let carry = n.add_net("carry");
/// n.add_cell(CellKind::Xor(2), "u_sum", &[a, b], Some(sum));
/// n.add_cell(CellKind::And(2), "u_carry", &[a, b], Some(carry));
/// n.add_output("sum", sum);
/// n.add_output("carry", carry);
/// assert_eq!(n.num_cells(), 6); // 2 inputs + 2 gates + 2 outputs
/// assert_eq!(n.num_nets(), 4);
/// ```
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Netlist {
    name: String,
    cells: Vec<Cell>,
    nets: Vec<Net>,
    cell_names: HashMap<String, CellId>,
    net_names: HashMap<String, NetId>,
    primary_inputs: Vec<CellId>,
    primary_outputs: Vec<CellId>,
}

impl Netlist {
    /// Creates an empty netlist with the given design name.
    pub fn new(name: impl Into<String>) -> Self {
        Netlist {
            name: name.into(),
            cells: Vec::new(),
            nets: Vec::new(),
            cell_names: HashMap::new(),
            net_names: HashMap::new(),
            primary_inputs: Vec::new(),
            primary_outputs: Vec::new(),
        }
    }

    /// The design name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Renames the design.
    pub fn set_name(&mut self, name: impl Into<String>) {
        self.name = name.into();
    }

    // ------------------------------------------------------------------
    // Construction
    // ------------------------------------------------------------------

    fn unique_net_name(&self, requested: &str) -> String {
        if !self.net_names.contains_key(requested) {
            return requested.to_string();
        }
        let mut i = 1usize;
        loop {
            let candidate = format!("{requested}__{i}");
            if !self.net_names.contains_key(&candidate) {
                return candidate;
            }
            i += 1;
        }
    }

    fn unique_cell_name(&self, requested: &str) -> String {
        if !self.cell_names.contains_key(requested) {
            return requested.to_string();
        }
        let mut i = 1usize;
        loop {
            let candidate = format!("{requested}__{i}");
            if !self.cell_names.contains_key(&candidate) {
                return candidate;
            }
            i += 1;
        }
    }

    /// Adds a new net. If the requested name collides with an existing net a
    /// unique suffix is appended.
    pub fn add_net(&mut self, name: impl AsRef<str>) -> NetId {
        let name = self.unique_net_name(name.as_ref());
        let id = NetId::from_index(self.nets.len());
        self.net_names.insert(name.clone(), id);
        self.nets.push(Net {
            name,
            driver: None,
            loads: Vec::new(),
        });
        id
    }

    /// Adds a cell, connecting its input pins to `inputs` (in pin order) and
    /// its output to `output`.
    ///
    /// This is the checked equivalent of [`add_cell`](Self::add_cell): it
    /// returns an error instead of panicking on malformed connections.
    ///
    /// # Errors
    ///
    /// * [`NetlistError::PinCountMismatch`] if `inputs.len()` differs from
    ///   the kind's pin count.
    /// * [`NetlistError::OutputMismatch`] if `output` presence does not match
    ///   the kind.
    /// * [`NetlistError::MultipleDrivers`] if `output` already has a driver.
    pub fn try_add_cell(
        &mut self,
        kind: CellKind,
        name: impl AsRef<str>,
        inputs: &[NetId],
        output: Option<NetId>,
    ) -> Result<CellId, NetlistError> {
        let name = self.unique_cell_name(name.as_ref());
        if inputs.len() != kind.num_inputs() {
            return Err(NetlistError::PinCountMismatch {
                cell: name,
                expected: kind.num_inputs(),
                got: inputs.len(),
            });
        }
        if output.is_some() != kind.has_output() {
            return Err(NetlistError::OutputMismatch { cell: name });
        }
        if let Some(out) = output {
            if self.nets[out.index()].driver.is_some() {
                return Err(NetlistError::MultipleDrivers {
                    net: self.nets[out.index()].name.clone(),
                });
            }
        }
        let id = CellId::from_index(self.cells.len());
        for (pin, &net) in inputs.iter().enumerate() {
            self.nets[net.index()]
                .loads
                .push(PinRef::new(id, pin as PinIndex));
        }
        if let Some(out) = output {
            self.nets[out.index()].driver = Some(id);
        }
        self.cell_names.insert(name.clone(), id);
        self.cells.push(Cell {
            kind,
            name,
            inputs: inputs.to_vec(),
            output,
            attrs: CellAttrs::default(),
            dead: false,
        });
        if kind == CellKind::Input {
            self.primary_inputs.push(id);
        } else if kind == CellKind::Output {
            self.primary_outputs.push(id);
        }
        Ok(id)
    }

    /// Adds a cell, panicking on malformed connections.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions for which
    /// [`try_add_cell`](Self::try_add_cell) returns an error.
    pub fn add_cell(
        &mut self,
        kind: CellKind,
        name: impl AsRef<str>,
        inputs: &[NetId],
        output: Option<NetId>,
    ) -> CellId {
        self.try_add_cell(kind, name, inputs, output)
            .unwrap_or_else(|e| panic!("add_cell: {e}"))
    }

    /// Adds a primary input: creates an `Input` pseudo-cell and the net it
    /// drives. Returns both.
    pub fn add_input(&mut self, name: impl AsRef<str>) -> (CellId, NetId) {
        let net = self.add_net(name.as_ref());
        let cell = self.add_cell(CellKind::Input, name.as_ref(), &[], Some(net));
        (cell, net)
    }

    /// Adds a primary output pseudo-cell observing `net`.
    pub fn add_output(&mut self, name: impl AsRef<str>, net: NetId) -> CellId {
        self.add_cell(CellKind::Output, name.as_ref(), &[net], None)
    }

    // ------------------------------------------------------------------
    // Accessors
    // ------------------------------------------------------------------

    /// Number of cells ever added (live and dead).
    pub fn num_cells(&self) -> usize {
        self.cells.len()
    }

    /// Number of live (not removed) cells.
    pub fn num_live_cells(&self) -> usize {
        self.cells.iter().filter(|c| !c.dead).count()
    }

    /// Number of nets.
    pub fn num_nets(&self) -> usize {
        self.nets.len()
    }

    /// The cell with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this netlist.
    pub fn cell(&self, id: CellId) -> &Cell {
        &self.cells[id.index()]
    }

    /// All cells as a dense slice indexed by [`CellId::index`] (dead cells
    /// included — check [`Cell::is_dead`]). This is the allocation-free
    /// counterpart of [`live_cells`](Self::live_cells) for compiled engines
    /// that index cells by their arena position.
    pub fn cells(&self) -> &[Cell] {
        &self.cells
    }

    /// All nets as a dense slice indexed by [`NetId::index`].
    pub fn nets(&self) -> &[Net] {
        &self.nets
    }

    /// The net with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this netlist.
    pub fn net(&self, id: NetId) -> &Net {
        &self.nets[id.index()]
    }

    /// Iterates over all cell ids (including dead cells).
    pub fn cell_ids(&self) -> impl Iterator<Item = CellId> + '_ {
        (0..self.cells.len()).map(CellId::from_index)
    }

    /// Iterates over the ids of live (not removed) cells.
    pub fn live_cell_ids(&self) -> impl Iterator<Item = CellId> + '_ {
        self.cells
            .iter()
            .enumerate()
            .filter(|(_, c)| !c.dead)
            .map(|(i, _)| CellId::from_index(i))
    }

    /// Iterates over all net ids.
    pub fn net_ids(&self) -> impl Iterator<Item = NetId> + '_ {
        (0..self.nets.len()).map(NetId::from_index)
    }

    /// Iterates over `(id, cell)` pairs of live cells.
    pub fn live_cells(&self) -> impl Iterator<Item = (CellId, &Cell)> + '_ {
        self.cells
            .iter()
            .enumerate()
            .filter(|(_, c)| !c.dead)
            .map(|(i, c)| (CellId::from_index(i), c))
    }

    /// The `Input` pseudo-cells, in creation order (dead ones excluded).
    pub fn primary_inputs(&self) -> Vec<CellId> {
        self.primary_inputs
            .iter()
            .copied()
            .filter(|&c| !self.cells[c.index()].dead)
            .collect()
    }

    /// The `Output` pseudo-cells, in creation order (dead ones excluded).
    pub fn primary_outputs(&self) -> Vec<CellId> {
        self.primary_outputs
            .iter()
            .copied()
            .filter(|&c| !self.cells[c.index()].dead)
            .collect()
    }

    /// The nets driven by primary inputs.
    pub fn primary_input_nets(&self) -> Vec<NetId> {
        self.primary_inputs()
            .iter()
            .filter_map(|&c| self.cells[c.index()].output)
            .collect()
    }

    /// The nets observed by primary outputs.
    pub fn primary_output_nets(&self) -> Vec<NetId> {
        self.primary_outputs()
            .iter()
            .map(|&c| self.cells[c.index()].inputs[0])
            .collect()
    }

    /// Looks up a net by exact name.
    pub fn find_net(&self, name: &str) -> Option<NetId> {
        self.net_names.get(name).copied()
    }

    /// Looks up a cell by exact instance name.
    pub fn find_cell(&self, name: &str) -> Option<CellId> {
        self.cell_names.get(name).copied()
    }

    /// Looks up the primary input cell whose name is `name`.
    pub fn find_input(&self, name: &str) -> Option<CellId> {
        self.find_cell(name).filter(|&c| {
            self.cells[c.index()].kind == CellKind::Input && !self.cells[c.index()].dead
        })
    }

    /// The net connected to input pin `pin` of `cell`.
    ///
    /// # Panics
    ///
    /// Panics if the pin index is out of range.
    pub fn input_net(&self, cell: CellId, pin: PinIndex) -> NetId {
        self.cells[cell.index()].inputs[pin as usize]
    }

    /// The net driven by `cell`, if any.
    pub fn output_net(&self, cell: CellId) -> Option<NetId> {
        self.cells[cell.index()].output
    }

    /// The driver cell of `net`, if any.
    pub fn driver_of(&self, net: NetId) -> Option<CellId> {
        self.nets[net.index()].driver
    }

    /// The loads (input pins) of `net`.
    pub fn loads_of(&self, net: NetId) -> &[PinRef] {
        &self.nets[net.index()].loads
    }

    /// All live flip-flop cells (both plain and scan).
    pub fn sequential_cells(&self) -> Vec<CellId> {
        self.live_cells()
            .filter(|(_, c)| c.kind.is_sequential())
            .map(|(id, _)| id)
            .collect()
    }

    // ------------------------------------------------------------------
    // Attributes
    // ------------------------------------------------------------------

    /// Replaces the attributes of a cell.
    pub fn set_attrs(&mut self, cell: CellId, attrs: CellAttrs) {
        self.cells[cell.index()].attrs = attrs;
    }

    /// Sets only the group attribute of a cell.
    pub fn set_group(&mut self, cell: CellId, group: impl Into<String>) {
        self.cells[cell.index()].attrs.group = group.into();
    }

    /// Sets only the address-bit attribute of a cell.
    pub fn set_address_bit(&mut self, cell: CellId, bit: u32) {
        self.cells[cell.index()].attrs.address_bit = Some(bit);
    }

    /// Ids of live cells whose group is `group` or nested below it.
    pub fn cells_in_group(&self, group: &str) -> Vec<CellId> {
        self.live_cells()
            .filter(|(_, c)| c.attrs.in_group(group))
            .map(|(id, _)| id)
            .collect()
    }

    /// All distinct non-empty group names present in the design.
    pub fn groups(&self) -> Vec<String> {
        let mut groups: Vec<String> = self
            .live_cells()
            .map(|(_, c)| c.attrs.group.clone())
            .filter(|g| !g.is_empty())
            .collect();
        groups.sort();
        groups.dedup();
        groups
    }

    // ------------------------------------------------------------------
    // Structural editing (used by circuit manipulation)
    // ------------------------------------------------------------------

    /// Reconnects input pin `pin` of `cell` to `new_net`, maintaining load
    /// lists on both the old and the new net.
    ///
    /// # Panics
    ///
    /// Panics if the pin index is out of range.
    pub fn set_cell_input(&mut self, cell: CellId, pin: PinIndex, new_net: NetId) {
        let old_net = self.cells[cell.index()].inputs[pin as usize];
        if old_net == new_net {
            return;
        }
        let pinref = PinRef::new(cell, pin);
        self.nets[old_net.index()].loads.retain(|&l| l != pinref);
        self.nets[new_net.index()].loads.push(pinref);
        self.cells[cell.index()].inputs[pin as usize] = new_net;
    }

    /// Detaches the driver of `net`, leaving the net floating. Returns the
    /// previous driver, if any. The previous driver cell keeps existing but
    /// no longer drives anything.
    pub fn detach_driver(&mut self, net: NetId) -> Option<CellId> {
        let driver = self.nets[net.index()].driver.take();
        if let Some(d) = driver {
            self.cells[d.index()].output = None;
        }
        driver
    }

    /// Creates (or reuses) a tie cell of the requested constant value and
    /// returns the net it drives.
    pub fn tie_net(&mut self, value: bool) -> NetId {
        let kind = if value {
            CellKind::Tie1
        } else {
            CellKind::Tie0
        };
        // Reuse an existing live tie cell if one exists.
        for (id, cell) in self.live_cells() {
            if cell.kind == kind {
                if let Some(out) = cell.output {
                    let _ = id;
                    return out;
                }
            }
        }
        let net = self.add_net(if value { "tie1" } else { "tie0" });
        self.add_cell(
            kind,
            if value { "u_tie1" } else { "u_tie0" },
            &[],
            Some(net),
        );
        net
    }

    /// Replaces the kind and input connections of an existing cell, keeping
    /// its identity, name, attributes and output net. Used for in-place
    /// design-for-test transformations such as converting a plain D flip-flop
    /// into a mux-scan flip-flop.
    ///
    /// # Panics
    ///
    /// Panics if the number of supplied nets does not match the new kind's
    /// pin count, or if exactly one of (old kind, new kind) has an output.
    pub fn replace_cell(&mut self, cell: CellId, kind: CellKind, inputs: &[NetId]) {
        assert_eq!(
            inputs.len(),
            kind.num_inputs(),
            "replace_cell: pin count mismatch for `{}`",
            self.cells[cell.index()].name
        );
        assert_eq!(
            kind.has_output(),
            self.cells[cell.index()].kind.has_output(),
            "replace_cell: output presence mismatch for `{}`",
            self.cells[cell.index()].name
        );
        assert!(
            !self.cells[cell.index()].dead,
            "replace_cell: cell `{}` was removed",
            self.cells[cell.index()].name
        );
        let old_inputs = self.cells[cell.index()].inputs.clone();
        for (pin, net) in old_inputs.iter().enumerate() {
            let pinref = PinRef::new(cell, pin as PinIndex);
            self.nets[net.index()].loads.retain(|&l| l != pinref);
        }
        for (pin, &net) in inputs.iter().enumerate() {
            self.nets[net.index()]
                .loads
                .push(PinRef::new(cell, pin as PinIndex));
        }
        self.cells[cell.index()].kind = kind;
        self.cells[cell.index()].inputs = inputs.to_vec();
    }

    /// Marks a cell as removed: all its input pins are disconnected and the
    /// net it drove (if any) is left floating. Ids of other cells are not
    /// affected.
    pub fn remove_cell(&mut self, cell: CellId) {
        if self.cells[cell.index()].dead {
            return;
        }
        let inputs = self.cells[cell.index()].inputs.clone();
        for (pin, net) in inputs.iter().enumerate() {
            let pinref = PinRef::new(cell, pin as PinIndex);
            self.nets[net.index()].loads.retain(|&l| l != pinref);
        }
        self.cells[cell.index()].inputs.clear();
        if let Some(out) = self.cells[cell.index()].output.take() {
            self.nets[out.index()].driver = None;
        }
        self.cells[cell.index()].dead = true;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> (Netlist, NetId, NetId, NetId) {
        let mut n = Netlist::new("tiny");
        let (_, a) = n.add_input("a");
        let (_, b) = n.add_input("b");
        let y = n.add_net("y");
        n.add_cell(CellKind::And(2), "u1", &[a, b], Some(y));
        n.add_output("y", y);
        (n, a, b, y)
    }

    #[test]
    fn build_and_query() {
        let (n, a, b, y) = tiny();
        assert_eq!(n.num_cells(), 4);
        assert_eq!(n.num_nets(), 3);
        assert_eq!(n.primary_inputs().len(), 2);
        assert_eq!(n.primary_outputs().len(), 1);
        assert_eq!(n.primary_input_nets(), vec![a, b]);
        assert_eq!(n.primary_output_nets(), vec![y]);
        let and = n.find_cell("u1").unwrap();
        assert_eq!(n.cell(and).kind(), CellKind::And(2));
        assert_eq!(n.input_net(and, 0), a);
        assert_eq!(n.input_net(and, 1), b);
        assert_eq!(n.output_net(and), Some(y));
        assert_eq!(n.driver_of(y), Some(and));
        assert_eq!(n.loads_of(a).len(), 1);
    }

    #[test]
    fn duplicate_names_get_suffixed() {
        let mut n = Netlist::new("t");
        let n1 = n.add_net("w");
        let n2 = n.add_net("w");
        assert_ne!(n1, n2);
        assert_eq!(n.net(n2).name(), "w__1");
        let (_, a) = n.add_input("a");
        let y1 = n.add_net("y1");
        let y2 = n.add_net("y2");
        let c1 = n.add_cell(CellKind::Buf, "u", &[a], Some(y1));
        let c2 = n.add_cell(CellKind::Buf, "u", &[a], Some(y2));
        assert_ne!(c1, c2);
        assert_eq!(n.cell(c2).name(), "u__1");
    }

    #[test]
    fn multiple_drivers_rejected() {
        let mut n = Netlist::new("t");
        let (_, a) = n.add_input("a");
        let y = n.add_net("y");
        n.add_cell(CellKind::Buf, "u1", &[a], Some(y));
        let err = n
            .try_add_cell(CellKind::Buf, "u2", &[a], Some(y))
            .unwrap_err();
        assert!(matches!(err, NetlistError::MultipleDrivers { .. }));
    }

    #[test]
    fn pin_count_checked() {
        let mut n = Netlist::new("t");
        let (_, a) = n.add_input("a");
        let y = n.add_net("y");
        let err = n
            .try_add_cell(CellKind::And(2), "u1", &[a], Some(y))
            .unwrap_err();
        assert!(matches!(err, NetlistError::PinCountMismatch { .. }));
        let err = n.try_add_cell(CellKind::Buf, "u2", &[a], None).unwrap_err();
        assert!(matches!(err, NetlistError::OutputMismatch { .. }));
    }

    #[test]
    fn rewire_input_updates_loads() {
        let (mut n, a, b, _) = tiny();
        let and = n.find_cell("u1").unwrap();
        let tie = n.tie_net(false);
        n.set_cell_input(and, 1, tie);
        assert_eq!(n.input_net(and, 1), tie);
        assert!(n.loads_of(b).is_empty());
        assert_eq!(n.loads_of(tie).len(), 1);
        // a untouched
        assert_eq!(n.loads_of(a).len(), 1);
    }

    #[test]
    fn tie_net_is_reused() {
        let (mut n, ..) = tiny();
        let t0a = n.tie_net(false);
        let t0b = n.tie_net(false);
        let t1 = n.tie_net(true);
        assert_eq!(t0a, t0b);
        assert_ne!(t0a, t1);
    }

    #[test]
    fn detach_driver_floats_net() {
        let (mut n, _, _, y) = tiny();
        let and = n.find_cell("u1").unwrap();
        let prev = n.detach_driver(y);
        assert_eq!(prev, Some(and));
        assert_eq!(n.driver_of(y), None);
        assert_eq!(n.output_net(and), None);
    }

    #[test]
    fn remove_cell_detaches_everything() {
        let (mut n, a, b, y) = tiny();
        let and = n.find_cell("u1").unwrap();
        n.remove_cell(and);
        assert!(n.cell(and).is_dead());
        assert!(n.loads_of(a).is_empty());
        assert!(n.loads_of(b).is_empty());
        assert_eq!(n.driver_of(y), None);
        assert_eq!(n.num_live_cells(), 3);
        // removing twice is a no-op
        n.remove_cell(and);
        assert_eq!(n.num_live_cells(), 3);
    }

    #[test]
    fn replace_cell_converts_dff_to_sdff() {
        let mut n = Netlist::new("t");
        let (_, d) = n.add_input("d");
        let (_, ck) = n.add_input("ck");
        let (_, si) = n.add_input("si");
        let (_, se) = n.add_input("se");
        let q = n.add_net("q");
        let ff = n.add_cell(CellKind::Dff { reset: None }, "ff", &[d, ck], Some(q));
        n.add_output("q", q);
        n.replace_cell(ff, CellKind::Sdff { reset: None }, &[d, si, se, ck]);
        assert_eq!(n.cell(ff).kind(), CellKind::Sdff { reset: None });
        assert_eq!(n.cell(ff).inputs(), &[d, si, se, ck]);
        assert_eq!(n.output_net(ff), Some(q));
        assert_eq!(n.loads_of(si).len(), 1);
        assert_eq!(n.loads_of(se).len(), 1);
        // The clock load moved from pin 1 to pin 3.
        assert_eq!(n.loads_of(ck)[0].pin, 3);
    }

    #[test]
    #[should_panic(expected = "pin count mismatch")]
    fn replace_cell_checks_pin_count() {
        let mut n = Netlist::new("t");
        let (_, d) = n.add_input("d");
        let (_, ck) = n.add_input("ck");
        let q = n.add_net("q");
        let ff = n.add_cell(CellKind::Dff { reset: None }, "ff", &[d, ck], Some(q));
        n.replace_cell(ff, CellKind::Sdff { reset: None }, &[d, ck]);
    }

    #[test]
    fn groups_and_attrs() {
        let (mut n, ..) = tiny();
        let and = n.find_cell("u1").unwrap();
        n.set_group(and, "alu.logic");
        n.set_address_bit(and, 7);
        assert_eq!(n.cells_in_group("alu"), vec![and]);
        assert!(n.cells_in_group("btb").is_empty());
        assert_eq!(n.groups(), vec!["alu.logic".to_string()]);
        assert_eq!(n.cell(and).attrs().address_bit, Some(7));
    }

    #[test]
    fn sequential_cells_listed() {
        let mut n = Netlist::new("t");
        let (_, d) = n.add_input("d");
        let (_, ck) = n.add_input("ck");
        let q = n.add_net("q");
        let ff = n.add_cell(CellKind::Dff { reset: None }, "ff", &[d, ck], Some(q));
        n.add_output("q", q);
        assert_eq!(n.sequential_cells(), vec![ff]);
    }

    #[test]
    fn find_input_only_matches_inputs() {
        let (n, ..) = tiny();
        assert!(n.find_input("a").is_some());
        assert!(n.find_input("u1").is_none());
    }
}
