//! Structural Verilog subset reader and writer.
//!
//! The supported subset is the flat, purely structural style produced by the
//! writer itself (and by typical synthesis netlists restricted to this cell
//! library): one `module` with port declarations, `wire` declarations and
//! named-port instantiations of library cells. Behavioural constructs are not
//! supported.

use crate::{CellKind, NetId, Netlist};
use std::collections::HashMap;

/// Error produced while parsing structural Verilog — the shared frontend
/// error type, re-exported here for backwards compatibility (it carries the
/// 1-based line *and column* plus the offending token, when known).
pub use crate::frontend::ParseError;

fn needs_escape(name: &str) -> bool {
    name.is_empty()
        || name.chars().next().is_some_and(|c| c.is_ascii_digit())
        || name
            .chars()
            .any(|c| !(c.is_ascii_alphanumeric() || c == '_' || c == '$'))
}

fn emit_name(name: &str) -> String {
    if needs_escape(name) {
        format!("\\{name} ")
    } else {
        name.to_string()
    }
}

/// Serialises a netlist to structural Verilog.
///
/// Primary ports take the names of the nets they drive/observe; every other
/// net becomes a `wire`. Dead cells are skipped.
pub fn write_verilog(netlist: &Netlist) -> String {
    let mut out = String::new();
    let mut input_nets = Vec::new();
    let mut output_nets = Vec::new();
    for pi in netlist.primary_inputs() {
        if let Some(net) = netlist.output_net(pi) {
            input_nets.push(net);
        }
    }
    for po in netlist.primary_outputs() {
        let net = netlist.cell(po).inputs()[0];
        if !output_nets.contains(&net) && !input_nets.contains(&net) {
            output_nets.push(net);
        }
    }

    let port_list: Vec<String> = input_nets
        .iter()
        .chain(output_nets.iter())
        .map(|&n| emit_name(netlist.net(n).name()))
        .collect();
    out.push_str(&format!(
        "module {} ({});\n",
        emit_name(netlist.name()),
        port_list.join(", ")
    ));
    for &n in &input_nets {
        out.push_str(&format!("  input {};\n", emit_name(netlist.net(n).name())));
    }
    for &n in &output_nets {
        out.push_str(&format!("  output {};\n", emit_name(netlist.net(n).name())));
    }
    for net_id in netlist.net_ids() {
        if input_nets.contains(&net_id) || output_nets.contains(&net_id) {
            continue;
        }
        let net = netlist.net(net_id);
        let live = net
            .driver()
            .map(|d| !netlist.cell(d).is_dead())
            .unwrap_or(false)
            || net.loads().iter().any(|l| !netlist.cell(l.cell).is_dead());
        if live {
            out.push_str(&format!("  wire {};\n", emit_name(net.name())));
        }
    }
    out.push('\n');
    for (_, cell) in netlist.live_cells() {
        let kind = cell.kind();
        if kind.is_port() {
            continue;
        }
        let mut conns: Vec<String> = Vec::new();
        for (pin, &net) in cell.inputs().iter().enumerate() {
            conns.push(format!(
                ".{}({})",
                kind.input_pin_name(pin),
                emit_name(netlist.net(net).name())
            ));
        }
        if let Some(out_net) = cell.output() {
            conns.push(format!(
                ".{}({})",
                kind.output_pin_name(),
                emit_name(netlist.net(out_net).name())
            ));
        }
        out.push_str(&format!(
            "  {} {} ({});\n",
            kind.lib_name(),
            emit_name(cell.name()),
            conns.join(", ")
        ));
    }
    out.push_str("endmodule\n");
    out
}

#[derive(Debug, Clone, PartialEq)]
enum Token {
    Ident(String),
    Symbol(char),
}

struct Lexer<'a> {
    text: &'a str,
    pos: usize,
    line: usize,
    column: usize,
    /// Location where the most recent token started, for error reporting.
    token_line: usize,
    token_column: usize,
}

impl<'a> Lexer<'a> {
    fn new(text: &'a str) -> Self {
        Lexer {
            text,
            pos: 0,
            line: 1,
            column: 1,
            token_line: 1,
            token_column: 1,
        }
    }

    /// A parse error at the current scan position (for lexical errors).
    fn error_here(&self, message: impl Into<String>) -> ParseError {
        ParseError::new(self.line, self.column, message)
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.text[self.pos..].chars().next()?;
        self.pos += c.len_utf8();
        if c == '\n' {
            self.line += 1;
            self.column = 1;
        } else {
            self.column += 1;
        }
        Some(c)
    }

    fn peek(&self) -> Option<char> {
        self.text[self.pos..].chars().next()
    }

    fn skip_ws_and_comments(&mut self) -> Result<(), ParseError> {
        loop {
            match self.peek() {
                Some(c) if c.is_whitespace() => {
                    self.bump();
                }
                Some('/') => {
                    let rest = &self.text[self.pos..];
                    if rest.starts_with("//") {
                        while let Some(c) = self.bump() {
                            if c == '\n' {
                                break;
                            }
                        }
                    } else if rest.starts_with("/*") {
                        self.bump();
                        self.bump();
                        loop {
                            match self.bump() {
                                Some('*') if self.peek() == Some('/') => {
                                    self.bump();
                                    break;
                                }
                                Some(_) => {}
                                None => return Err(self.error_here("unterminated block comment")),
                            }
                        }
                    } else {
                        return Ok(());
                    }
                }
                _ => return Ok(()),
            }
        }
    }

    fn next_token(&mut self) -> Result<Option<Token>, ParseError> {
        self.skip_ws_and_comments()?;
        self.token_line = self.line;
        self.token_column = self.column;
        let Some(c) = self.peek() else {
            return Ok(None);
        };
        if c == '\\' {
            // Escaped identifier: backslash up to whitespace.
            self.bump();
            let start = self.pos;
            while let Some(c) = self.peek() {
                if c.is_whitespace() {
                    break;
                }
                self.bump();
            }
            return Ok(Some(Token::Ident(self.text[start..self.pos].to_string())));
        }
        if c.is_ascii_alphabetic() || c == '_' || c == '$' || c.is_ascii_digit() {
            let start = self.pos;
            while let Some(c) = self.peek() {
                if c.is_ascii_alphanumeric() || c == '_' || c == '$' {
                    self.bump();
                } else {
                    break;
                }
            }
            return Ok(Some(Token::Ident(self.text[start..self.pos].to_string())));
        }
        self.bump();
        Ok(Some(Token::Symbol(c)))
    }
}

/// Renders a token for the [`ParseError::token`] field.
fn token_text(token: &Token) -> String {
    match token {
        Token::Ident(s) => s.clone(),
        Token::Symbol(c) => c.to_string(),
    }
}

struct Parser<'a> {
    lexer: Lexer<'a>,
    lookahead: Option<Token>,
    /// Source location of the lookahead token.
    look_pos: (usize, usize),
    /// Source location of the most recently consumed token.
    last_pos: (usize, usize),
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Result<Self, ParseError> {
        let mut lexer = Lexer::new(text);
        let lookahead = lexer.next_token()?;
        let look_pos = (lexer.token_line, lexer.token_column);
        Ok(Parser {
            lexer,
            lookahead,
            look_pos,
            last_pos: (1, 1),
        })
    }

    fn peek(&self) -> Option<&Token> {
        self.lookahead.as_ref()
    }

    fn advance(&mut self) -> Result<Option<Token>, ParseError> {
        let current = self.lookahead.take();
        self.last_pos = self.look_pos;
        self.lookahead = self.lexer.next_token()?;
        self.look_pos = (self.lexer.token_line, self.lexer.token_column);
        Ok(current)
    }

    /// A parse error located at the most recently consumed token, carrying
    /// that token when one was consumed.
    fn error_at_last(&self, message: impl Into<String>, token: Option<&Token>) -> ParseError {
        let mut error = ParseError::new(self.last_pos.0, self.last_pos.1, message);
        if let Some(token) = token {
            error = error.with_token(token_text(token));
        }
        error
    }

    fn expect_symbol(&mut self, sym: char) -> Result<(), ParseError> {
        match self.advance()? {
            Some(Token::Symbol(c)) if c == sym => Ok(()),
            other => Err(self.error_at_last(format!("expected `{sym}`"), other.as_ref())),
        }
    }

    fn expect_ident(&mut self) -> Result<String, ParseError> {
        match self.advance()? {
            Some(Token::Ident(s)) => Ok(s),
            other => Err(self.error_at_last("expected identifier", other.as_ref())),
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), ParseError> {
        let ident = self.expect_ident()?;
        if ident == kw {
            Ok(())
        } else {
            Err(self.error_at_last(format!("expected `{kw}`"), Some(&Token::Ident(ident))))
        }
    }

    /// A parse error located at the lookahead (not yet consumed) token.
    fn error_at_look(&self, message: impl Into<String>) -> ParseError {
        let mut error = ParseError::new(self.look_pos.0, self.look_pos.1, message);
        if let Some(token) = &self.lookahead {
            error = error.with_token(token_text(token));
        }
        error
    }

    fn ident_list_until_semicolon(&mut self) -> Result<Vec<String>, ParseError> {
        let mut names = Vec::new();
        loop {
            names.push(self.expect_ident()?);
            match self.advance()? {
                Some(Token::Symbol(',')) => continue,
                Some(Token::Symbol(';')) => break,
                other => return Err(self.error_at_last("expected `,` or `;`", other.as_ref())),
            }
        }
        Ok(names)
    }
}

/// Parses a single structural Verilog module into a [`Netlist`].
///
/// # Errors
///
/// Returns a [`ParseError`] on any syntax error, reference to an undeclared
/// net, or instantiation of a cell type outside the library.
pub fn parse_verilog(text: &str) -> Result<Netlist, ParseError> {
    let mut p = Parser::new(text)?;
    p.expect_keyword("module")?;
    let module_name = p.expect_ident()?;
    let mut netlist = Netlist::new(module_name);
    // Port list (names only; direction comes from the declarations).
    p.expect_symbol('(')?;
    loop {
        match p.advance()? {
            Some(Token::Symbol(')')) => break,
            Some(Token::Ident(_)) | Some(Token::Symbol(',')) => continue,
            other => return Err(p.error_at_last("unexpected token in port list", other.as_ref())),
        }
    }
    p.expect_symbol(';')?;

    let mut nets: HashMap<String, NetId> = HashMap::new();
    let mut pending_outputs: Vec<String> = Vec::new();

    loop {
        let Some(tok) = p.peek().cloned() else {
            return Err(p.error_at_last("unexpected end of file, missing `endmodule`", None));
        };
        let Token::Ident(word) = tok else {
            return Err(p.error_at_look("unexpected token"));
        };
        match word.as_str() {
            "endmodule" => {
                p.advance()?;
                break;
            }
            "input" => {
                p.advance()?;
                for name in p.ident_list_until_semicolon()? {
                    let (_, net) = netlist.add_input(&name);
                    nets.insert(name, net);
                }
            }
            "output" => {
                p.advance()?;
                for name in p.ident_list_until_semicolon()? {
                    // The Output pseudo-cell is created after all instances,
                    // once the net exists and has a driver.
                    let net = *nets
                        .entry(name.clone())
                        .or_insert_with(|| netlist.add_net(&name));
                    let _ = net;
                    pending_outputs.push(name);
                }
            }
            "wire" => {
                p.advance()?;
                for name in p.ident_list_until_semicolon()? {
                    nets.entry(name.clone())
                        .or_insert_with(|| netlist.add_net(&name));
                }
            }
            _ => {
                // Cell instance: TYPE name ( .PIN(net), ... );
                p.advance()?;
                let kind = CellKind::from_lib_name(&word).ok_or_else(|| {
                    p.error_at_last(format!("unknown cell type `{word}`"), None)
                        .with_token(word.clone())
                })?;
                let inst_name = p.expect_ident()?;
                p.expect_symbol('(')?;
                let mut connections: HashMap<String, String> = HashMap::new();
                loop {
                    match p.advance()? {
                        Some(Token::Symbol(')')) => break,
                        Some(Token::Symbol(',')) => continue,
                        Some(Token::Symbol('.')) => {
                            let pin = p.expect_ident()?;
                            p.expect_symbol('(')?;
                            let net = p.expect_ident()?;
                            p.expect_symbol(')')?;
                            connections.insert(pin, net);
                        }
                        other => {
                            return Err(
                                p.error_at_last("unexpected token in connections", other.as_ref())
                            )
                        }
                    }
                }
                p.expect_symbol(';')?;
                let mut input_ids = Vec::with_capacity(kind.num_inputs());
                for pin in 0..kind.num_inputs() {
                    let pin_name = kind.input_pin_name(pin).into_owned();
                    let net_name = connections.get(&pin_name).ok_or_else(|| {
                        p.error_at_last(
                            format!(
                                "instance `{inst_name}`: missing connection for pin `{pin_name}`"
                            ),
                            None,
                        )
                    })?;
                    let net = *nets.get(net_name).ok_or_else(|| {
                        p.error_at_last(
                            format!("instance `{inst_name}`: undeclared net `{net_name}`"),
                            None,
                        )
                        .with_token(net_name.clone())
                    })?;
                    input_ids.push(net);
                }
                let output_id = if kind.has_output() {
                    let pin_name = kind.output_pin_name();
                    let net_name = connections.get(pin_name).ok_or_else(|| {
                        p.error_at_last(
                            format!(
                                "instance `{inst_name}`: missing connection for pin `{pin_name}`"
                            ),
                            None,
                        )
                    })?;
                    Some(*nets.get(net_name).ok_or_else(|| {
                        p.error_at_last(
                            format!("instance `{inst_name}`: undeclared net `{net_name}`"),
                            None,
                        )
                        .with_token(net_name.clone())
                    })?)
                } else {
                    None
                };
                netlist
                    .try_add_cell(kind, &inst_name, &input_ids, output_id)
                    .map_err(|e| p.error_at_last(e.to_string(), None))?;
            }
        }
    }

    for name in pending_outputs {
        let net = nets[&name];
        netlist.add_output(&name, net);
    }
    Ok(netlist)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{stats::stats, NetlistBuilder};

    #[test]
    fn writer_emits_all_live_cells() {
        let mut b = NetlistBuilder::new("half_adder");
        let a = b.input("a");
        let c = b.input("b");
        let s = b.xor2(a, c);
        let cy = b.and2(a, c);
        b.output("sum", s);
        b.output("carry", cy);
        let n = b.finish();
        let text = write_verilog(&n);
        assert!(text.contains("module half_adder"));
        assert!(text.contains("XOR2"));
        assert!(text.contains("AND2"));
        assert!(text.contains("endmodule"));
    }

    #[test]
    fn parse_simple_module() {
        let src = r"
// a half adder
module ha (a, b, s, c);
  input a, b;
  output s, c;
  XOR2 u1 (.A0(a), .A1(b), .Y(s));
  AND2 u2 (.A0(a), .A1(b), .Y(c));
endmodule
";
        let n = parse_verilog(src).unwrap();
        assert_eq!(n.name(), "ha");
        assert_eq!(n.primary_inputs().len(), 2);
        assert_eq!(n.primary_outputs().len(), 2);
        let s = stats(&n);
        assert_eq!(s.combinational_cells, 2);
    }

    #[test]
    fn parse_sequential_and_block_comment() {
        let src = r"
module seq (d, ck, q);
  input d, ck; /* the
  clock */
  output q;
  DFF ff (.D(d), .CK(ck), .Q(q));
endmodule
";
        let n = parse_verilog(src).unwrap();
        assert_eq!(n.sequential_cells().len(), 1);
    }

    #[test]
    fn roundtrip_preserves_structure() {
        let mut b = NetlistBuilder::new("rt");
        let a = b.input_bus("a", 4);
        let c = b.input_bus("b", 4);
        let ck = b.input("ck");
        let zero = b.tie0();
        let (sum, _) = b.ripple_adder(&a, &c, zero);
        let q = b.register(&sum, ck);
        b.output_bus("q", &q);
        let n = b.finish();
        let text = write_verilog(&n);
        let parsed = parse_verilog(&text).unwrap();
        let s1 = stats(&n);
        let s2 = stats(&parsed);
        assert_eq!(s1.combinational_cells, s2.combinational_cells);
        assert_eq!(s1.flip_flops, s2.flip_flops);
        assert_eq!(s1.primary_inputs, s2.primary_inputs);
        assert_eq!(s1.primary_outputs, s2.primary_outputs);
        assert_eq!(s1.tie_cells, s2.tie_cells);
    }

    #[test]
    fn escaped_identifiers_roundtrip() {
        let mut b = NetlistBuilder::new("esc");
        let a = b.input_bus("data.in", 2);
        let y = b.and2(a[0], a[1]);
        b.output("out[0]", y);
        let n = b.finish();
        let text = write_verilog(&n);
        assert!(text.contains('\\'));
        let parsed = parse_verilog(&text).unwrap();
        assert_eq!(parsed.primary_inputs().len(), 2);
        assert_eq!(parsed.primary_outputs().len(), 1);
    }

    #[test]
    fn unknown_cell_type_is_an_error() {
        let src = "module m (a, y); input a; output y; FOO u1 (.A(a), .Y(y)); endmodule";
        let err = parse_verilog(src).unwrap_err();
        assert!(err.message.contains("unknown cell type"));
    }

    #[test]
    fn missing_pin_is_an_error() {
        let src = "module m (a, y); input a; output y; AND2 u1 (.A0(a), .Y(y)); endmodule";
        let err = parse_verilog(src).unwrap_err();
        assert!(err.message.contains("missing connection"));
    }

    #[test]
    fn undeclared_net_is_an_error() {
        let src = "module m (a, y); input a; output y; INV u1 (.A(zz), .Y(y)); endmodule";
        let err = parse_verilog(src).unwrap_err();
        assert!(err.message.contains("undeclared net"));
    }

    #[test]
    fn error_reports_line() {
        let src = "module m (a);\ninput a;\n???\nendmodule";
        let err = parse_verilog(src).unwrap_err();
        assert!(err.line >= 3, "line was {}", err.line);
        assert!(err.to_string().contains("line"));
    }

    #[test]
    fn error_reports_column_and_token() {
        // The bogus cell type starts at column 3 of line 3.
        let src = "module m (a, y);\n  input a; output y;\n  FOO u1 (.A(a), .Y(y));\nendmodule";
        let err = parse_verilog(src).unwrap_err();
        assert_eq!(err.line, 3);
        assert_eq!(err.column, 3);
        assert_eq!(err.token.as_deref(), Some("FOO"));
        assert_eq!(
            err.to_string(),
            "parse error at line 3, column 3: unknown cell type `FOO` (near `FOO`)"
        );
    }

    #[test]
    fn expectation_errors_carry_the_found_token() {
        let err = parse_verilog("module m [a);").unwrap_err();
        assert_eq!(err.token.as_deref(), Some("["));
        assert_eq!(err.line, 1);
        assert_eq!(err.column, 10, "column of the `[`");
        assert!(err.to_string().contains("near `[`"), "{err}");
    }
}
