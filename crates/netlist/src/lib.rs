//! Gate-level netlist infrastructure for the reproduction of
//! *"On-Line Functionally Untestable Fault Identification in Embedded
//! Processor Cores"* (Bernardi et al., DATE 2013).
//!
//! This crate provides the structural substrate every other crate in the
//! workspace builds on:
//!
//! * a small but complete **cell library** ([`CellKind`]): gates, 2-to-1
//!   muxes, D and mux-scan flip-flops, tie cells and port pseudo-cells;
//! * a flat, arena-indexed **netlist** ([`Netlist`]) with structural editing
//!   operations (rewiring, driver detachment, cell removal) used by the
//!   circuit-manipulation steps of the paper;
//! * an ergonomic **builder** ([`NetlistBuilder`]) with word-level helpers
//!   (adders, muxes, registers, shifters, comparators) used by the processor
//!   generators;
//! * **graph algorithms** ([`graph`]): levelization, fan-in/fan-out cones;
//! * **validation** ([`validate`]) and **statistics** ([`stats`]);
//! * a **structural Verilog** subset reader/writer ([`verilog`]);
//! * pluggable **netlist frontends** ([`frontend`]): ISCAS-85/89 `.bench`
//!   reader/writer, a structural EDIF-subset reader, and the unified
//!   format-dispatching [`load_netlist`] entry point.
//!
//! # Examples
//!
//! ```
//! use netlist::{NetlistBuilder, stats::stats};
//!
//! let mut b = NetlistBuilder::new("mini");
//! let a = b.input_bus("a", 8);
//! let c = b.input_bus("b", 8);
//! let zero = b.tie0();
//! let (sum, carry) = b.ripple_adder(&a, &c, zero);
//! b.output_bus("sum", &sum);
//! b.output("cout", carry);
//! let design = b.finish();
//! let s = stats(&design);
//! assert_eq!(s.primary_inputs, 16);
//! assert!(s.stuck_at_faults() > 100);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod builder;
mod cell;
pub mod frontend;
pub mod graph;
mod ids;
#[allow(clippy::module_inception)]
mod netlist;
pub mod stats;
pub mod validate;
pub mod verilog;

pub use builder::{NetlistBuilder, Word};
pub use cell::{Cell, CellAttrs, CellKind, Reset};
pub use frontend::{load_netlist, Format, LoadError, ParseError};
pub use ids::{CellId, NetId, PinIndex, PinRef};
pub use netlist::{Net, Netlist, NetlistError};
pub use stats::NetlistStats;
