//! Pluggable netlist frontends: format detection and a unified entry point
//! over the structural readers of this crate.
//!
//! Three interchange formats are supported, all mapping onto the same
//! [`Netlist`] data model and the same cell library:
//!
//! * **structural Verilog** — the richest format; full reader *and* writer in
//!   [`verilog`](crate::verilog);
//! * **ISCAS-85/89 `.bench`** — the lingua franca of the ATPG literature
//!   (reader and writer in [`mod@bench`]);
//! * **structural EDIF 2.0.0 subset** — the s-expression interchange format
//!   emitted by synthesis tools (reader in [`edif`]).
//!
//! [`load_netlist`] dispatches on the file extension (or an explicit
//! [`Format`]), parses, and then runs the design-rule
//! [`validate`](crate::validate) pass so that every frontend hands the rest
//! of the workspace a netlist with the same guarantees the builder provides.
//!
//! # Examples
//!
//! ```
//! use netlist::frontend::{parse_netlist, Format};
//!
//! let src = "
//! INPUT(a)
//! INPUT(b)
//! OUTPUT(s)
//! s = XOR(a, b)
//! ";
//! let n = parse_netlist(src, Format::Bench).unwrap();
//! assert_eq!(n.primary_inputs().len(), 2);
//! assert_eq!(n.primary_outputs().len(), 1);
//! ```

pub mod bench;
pub mod edif;

use crate::validate::{validate, ValidateOptions, ValidationIssue};
use crate::Netlist;
use std::fmt;
use std::path::Path;

/// Error produced while parsing any of the netlist frontends.
///
/// One shared type serves the Verilog, `.bench` and EDIF readers, so that
/// drivers report source locations uniformly: 1-based line and column of the
/// point where the problem was detected, plus the offending token when the
/// parser had one in hand.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// Line where the problem was detected (1-based).
    pub line: usize,
    /// Column where the problem was detected (1-based, in characters).
    pub column: usize,
    /// The offending token, when the parser had consumed one.
    pub token: Option<String>,
    /// Human-readable description.
    pub message: String,
}

impl ParseError {
    /// A parse error at the given location with no token attached.
    pub fn new(line: usize, column: usize, message: impl Into<String>) -> Self {
        ParseError {
            line,
            column,
            token: None,
            message: message.into(),
        }
    }

    /// Attaches the offending token.
    #[must_use]
    pub fn with_token(mut self, token: impl Into<String>) -> Self {
        self.token = Some(token.into());
        self
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "parse error at line {}, column {}: {}",
            self.line, self.column, self.message
        )?;
        if let Some(token) = &self.token {
            write!(f, " (near `{token}`)")?;
        }
        Ok(())
    }
}

impl std::error::Error for ParseError {}

/// The netlist interchange formats understood by [`load_netlist`].
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum Format {
    /// Flat structural Verilog (see [`verilog`](crate::verilog)).
    Verilog,
    /// ISCAS-85/89 `.bench` (see [`mod@bench`]).
    Bench,
    /// Structural EDIF 2.0.0 subset (see [`edif`]).
    Edif,
}

impl Format {
    /// Every supported format, for driver `--format` listings.
    pub const ALL: [Format; 3] = [Format::Verilog, Format::Bench, Format::Edif];

    /// The canonical lowercase name (`verilog`, `bench`, `edif`).
    pub fn name(self) -> &'static str {
        match self {
            Format::Verilog => "verilog",
            Format::Bench => "bench",
            Format::Edif => "edif",
        }
    }

    /// Parses a format name as used on driver command lines
    /// (case-insensitive; accepts the canonical names and the common file
    /// extensions).
    pub fn from_name(name: &str) -> Option<Format> {
        match name.to_ascii_lowercase().as_str() {
            "verilog" | "v" => Some(Format::Verilog),
            "bench" | "isc" | "iscas" => Some(Format::Bench),
            "edif" | "edf" | "edn" => Some(Format::Edif),
            _ => None,
        }
    }

    /// Infers the format from a path's extension.
    pub fn from_path(path: &Path) -> Option<Format> {
        Format::from_name(path.extension()?.to_str()?)
    }
}

impl fmt::Display for Format {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Error produced by [`load_netlist`].
#[derive(Debug)]
pub enum LoadError {
    /// The file could not be read.
    Io {
        /// The offending path.
        path: String,
        /// The underlying I/O error.
        error: std::io::Error,
    },
    /// No format was given and the extension is not recognised.
    UnknownFormat {
        /// The offending path.
        path: String,
    },
    /// The file was read but did not parse.
    Parse {
        /// The format the file was parsed as.
        format: Format,
        /// The underlying parse error.
        error: ParseError,
    },
    /// The file parsed but violates the netlist design rules (floating nets,
    /// combinational loops, gated clocks).
    Validation {
        /// Every issue the [`validate`](crate::validate) pass found.
        issues: Vec<ValidationIssue>,
    },
}

impl fmt::Display for LoadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LoadError::Io { path, error } => write!(f, "cannot read `{path}`: {error}"),
            LoadError::UnknownFormat { path } => write!(
                f,
                "cannot infer a netlist format from `{path}` \
                 (expected a .v/.bench/.edif extension or an explicit format)"
            ),
            LoadError::Parse { format, error } => write!(f, "{format} {error}"),
            LoadError::Validation { issues } => {
                write!(f, "netlist violates design rules:")?;
                for issue in issues {
                    write!(f, "\n  - {issue}")?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for LoadError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            LoadError::Io { error, .. } => Some(error),
            LoadError::Parse { error, .. } => Some(error),
            _ => None,
        }
    }
}

/// Parses netlist text in the given format.
///
/// This is the string-level half of [`load_netlist`]; no validation pass is
/// run, so structurally incomplete netlists (e.g. a manipulation snapshot
/// with floating nets) can be round-tripped.
///
/// # Errors
///
/// Returns the shared frontend [`ParseError`] on any syntax error, reference
/// to an unknown net, or instantiation of a cell type outside the library.
pub fn parse_netlist(text: &str, format: Format) -> Result<Netlist, ParseError> {
    match format {
        Format::Verilog => crate::verilog::parse_verilog(text),
        Format::Bench => bench::parse_bench(text),
        Format::Edif => edif::parse_edif(text),
    }
}

/// Loads a netlist from `path`, dispatching on `format` (or on the file
/// extension when `format` is `None`), then validates the result with the
/// default design rules.
///
/// # Errors
///
/// See [`LoadError`].
pub fn load_netlist(path: impl AsRef<Path>, format: Option<Format>) -> Result<Netlist, LoadError> {
    let path = path.as_ref();
    let format = match format.or_else(|| Format::from_path(path)) {
        Some(format) => format,
        None => {
            return Err(LoadError::UnknownFormat {
                path: path.display().to_string(),
            })
        }
    };
    let text = std::fs::read_to_string(path).map_err(|error| LoadError::Io {
        path: path.display().to_string(),
        error,
    })?;
    let netlist =
        parse_netlist(&text, format).map_err(|error| LoadError::Parse { format, error })?;
    let issues = validate(&netlist, ValidateOptions::default());
    if issues.is_empty() {
        Ok(netlist)
    } else {
        Err(LoadError::Validation { issues })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn format_names_roundtrip() {
        for format in Format::ALL {
            assert_eq!(Format::from_name(format.name()), Some(format));
            assert_eq!(format.to_string(), format.name());
        }
        assert_eq!(Format::from_name("EDF"), Some(Format::Edif));
        assert_eq!(Format::from_name("vhdl"), None);
    }

    #[test]
    fn format_from_path_uses_the_extension() {
        assert_eq!(
            Format::from_path(Path::new("designs/c432.bench")),
            Some(Format::Bench)
        );
        assert_eq!(Format::from_path(Path::new("soc.v")), Some(Format::Verilog));
        assert_eq!(Format::from_path(Path::new("top.EDIF")), Some(Format::Edif));
        assert_eq!(Format::from_path(Path::new("README")), None);
    }

    #[test]
    fn parse_error_display_includes_line_column_and_token() {
        let plain = ParseError::new(3, 14, "expected `;`");
        assert_eq!(
            plain.to_string(),
            "parse error at line 3, column 14: expected `;`"
        );
        let with_token = ParseError::new(7, 2, "unknown cell type `FOO`").with_token("FOO");
        assert_eq!(
            with_token.to_string(),
            "parse error at line 7, column 2: unknown cell type `FOO` (near `FOO`)"
        );
    }

    #[test]
    fn parse_netlist_dispatches_on_format() {
        let verilog = "module m (a, y); input a; output y; INV u (.A(a), .Y(y)); endmodule";
        let bench = "INPUT(a)\nOUTPUT(y)\ny = NOT(a)\n";
        let nv = parse_netlist(verilog, Format::Verilog).unwrap();
        let nb = parse_netlist(bench, Format::Bench).unwrap();
        assert_eq!(nv.primary_inputs().len(), nb.primary_inputs().len());
        assert!(parse_netlist(bench, Format::Verilog).is_err());
    }

    #[test]
    fn load_netlist_reports_unknown_extension() {
        let err = load_netlist("/nonexistent/design.xyz", None).unwrap_err();
        assert!(matches!(err, LoadError::UnknownFormat { .. }), "{err}");
        assert!(err.to_string().contains("design.xyz"));
    }

    #[test]
    fn load_netlist_reports_io_errors() {
        let err = load_netlist("/nonexistent/design.bench", None).unwrap_err();
        assert!(matches!(err, LoadError::Io { .. }), "{err}");
    }

    #[test]
    fn load_netlist_parses_and_validates_a_file() {
        // Per-process directory so concurrent test runs (or other users on
        // a shared machine) never collide; removed at the end.
        let dir = std::env::temp_dir().join(format!("frontend_mod_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let good = dir.join("ha.bench");
        std::fs::write(&good, "INPUT(a)\nINPUT(b)\nOUTPUT(s)\ns = XOR(a, b)\n").unwrap();
        let n = load_netlist(&good, None).unwrap();
        assert_eq!(n.primary_inputs().len(), 2);

        // An undriven net fails at parse time; a combinational loop parses
        // but fails the validation pass.
        let bad = dir.join("floating.bench");
        std::fs::write(
            &bad,
            "INPUT(a)\nOUTPUT(y)\ny = AND(a, ghost)\nghost2 = NOT(a)\n",
        )
        .unwrap();
        let err = load_netlist(&bad, None).unwrap_err();
        assert!(
            matches!(err, LoadError::Parse { .. }),
            "undriven nets are caught at parse time: {err}"
        );
        let looped = dir.join("looped.bench");
        std::fs::write(
            &looped,
            "INPUT(a)\nOUTPUT(y)\np = NAND(a, q)\nq = NAND(a, p)\ny = BUFF(p)\n",
        )
        .unwrap();
        let err = load_netlist(&looped, None).unwrap_err();
        assert!(
            matches!(err, LoadError::Validation { .. }),
            "combinational loops are caught by validation: {err}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}
