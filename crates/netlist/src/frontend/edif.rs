//! Structural EDIF 2.0.0 subset reader.
//!
//! EDIF is the s-expression netlist interchange format emitted by synthesis
//! tools. This reader supports the flat structural subset: one library of
//! `GENERIC` cells, a top cell whose `view` carries an `interface` (the
//! primary ports) and `contents` (leaf-cell `instance`s plus `net`s joining
//! `portref`s). Instances must reference cells of this workspace's library
//! by name (`AND2`, `INV`, `MUX2`, `DFF`, … — the same names the structural
//! Verilog frontend uses); hierarchical designs are not flattened.
//!
//! Identifiers may use the `(rename mangled "original")` form, in which case
//! the original string names the object. Keywords are matched
//! case-insensitively, as EDIF tools disagree on capitalisation.

use super::ParseError;
use crate::{CellKind, NetId, Netlist};
use std::collections::HashMap;

// ---------------------------------------------------------------------------
// S-expression layer
// ---------------------------------------------------------------------------

#[derive(Debug)]
enum SExprKind {
    Symbol(String),
    Str(String),
    Int(i64),
    List(Vec<SExpr>),
}

#[derive(Debug)]
struct SExpr {
    kind: SExprKind,
    line: usize,
    column: usize,
}

impl SExpr {
    fn list(&self) -> Option<&[SExpr]> {
        match &self.kind {
            SExprKind::List(items) => Some(items),
            _ => None,
        }
    }

    fn symbol(&self) -> Option<&str> {
        match &self.kind {
            SExprKind::Symbol(s) => Some(s),
            _ => None,
        }
    }

    /// The keyword a list starts with, lowercased (EDIF keywords are matched
    /// case-insensitively). `None` for atoms and empty lists.
    fn keyword(&self) -> Option<String> {
        self.list()?
            .first()?
            .symbol()
            .map(|s| s.to_ascii_lowercase())
    }

    fn error(&self, message: impl Into<String>) -> ParseError {
        ParseError::new(self.line, self.column, message)
    }
}

struct Lexer<'a> {
    text: &'a str,
    pos: usize,
    line: usize,
    column: usize,
}

impl<'a> Lexer<'a> {
    fn new(text: &'a str) -> Self {
        Lexer {
            text,
            pos: 0,
            line: 1,
            column: 1,
        }
    }

    fn peek(&self) -> Option<char> {
        self.text[self.pos..].chars().next()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += c.len_utf8();
        if c == '\n' {
            self.line += 1;
            self.column = 1;
        } else {
            self.column += 1;
        }
        Some(c)
    }

    fn error(&self, message: impl Into<String>) -> ParseError {
        ParseError::new(self.line, self.column, message)
    }

    /// Parses one s-expression (atom or list).
    fn parse_expr(&mut self) -> Result<SExpr, ParseError> {
        self.skip_ws();
        let (line, column) = (self.line, self.column);
        match self.peek() {
            None => Err(self.error("unexpected end of file")),
            Some('(') => {
                self.bump();
                let mut items = Vec::new();
                loop {
                    self.skip_ws();
                    match self.peek() {
                        Some(')') => {
                            self.bump();
                            break;
                        }
                        None => return Err(ParseError::new(line, column, "unterminated list")),
                        Some(_) => items.push(self.parse_expr()?),
                    }
                }
                Ok(SExpr {
                    kind: SExprKind::List(items),
                    line,
                    column,
                })
            }
            Some(')') => Err(self.error("unmatched `)`").with_token(")")),
            Some('"') => {
                self.bump();
                let mut s = String::new();
                loop {
                    match self.bump() {
                        Some('"') => break,
                        Some(c) => s.push(c),
                        None => return Err(ParseError::new(line, column, "unterminated string")),
                    }
                }
                Ok(SExpr {
                    kind: SExprKind::Str(s),
                    line,
                    column,
                })
            }
            Some(_) => {
                let start = self.pos;
                while let Some(c) = self.peek() {
                    if c.is_whitespace() || c == '(' || c == ')' || c == '"' {
                        break;
                    }
                    self.bump();
                }
                let word = &self.text[start..self.pos];
                let kind = match word.parse::<i64>() {
                    Ok(v) => SExprKind::Int(v),
                    Err(_) => SExprKind::Symbol(word.to_string()),
                };
                Ok(SExpr { kind, line, column })
            }
        }
    }

    fn skip_ws(&mut self) {
        while let Some(c) = self.peek() {
            if c.is_whitespace() {
                self.bump();
            } else {
                break;
            }
        }
    }
}

// ---------------------------------------------------------------------------
// EDIF structure layer
// ---------------------------------------------------------------------------

#[derive(Copy, Clone, PartialEq, Eq, Debug)]
enum Direction {
    Input,
    Output,
}

struct Port {
    name: String,
    direction: Direction,
    line: usize,
    column: usize,
}

struct Instance {
    name: String,
    kind: CellKind,
    line: usize,
    column: usize,
}

/// `(portref P)` for a top-level port, `(portref P (instanceref I))` for an
/// instance pin.
struct PortRef {
    port: String,
    instance: Option<String>,
    line: usize,
    column: usize,
}

struct EdifNet {
    name: String,
    portrefs: Vec<PortRef>,
}

struct TopCell {
    name: String,
    ports: Vec<Port>,
    instances: Vec<Instance>,
    nets: Vec<EdifNet>,
}

/// Resolves a name position: a bare symbol, or `(rename mangled "original")`
/// in which case the original string is the name.
fn parse_name(e: &SExpr) -> Result<String, ParseError> {
    if let Some(s) = e.symbol() {
        return Ok(s.to_string());
    }
    if let SExprKind::Int(v) = e.kind {
        // ISCAS-derived designs name nets with bare numbers.
        return Ok(v.to_string());
    }
    if e.keyword().as_deref() == Some("rename") {
        let items = e.list().expect("keyword implies list");
        if let Some(SExprKind::Str(original)) = items.get(2).map(|i| &i.kind) {
            return Ok(original.clone());
        }
        if let Some(name) = items.get(1).and_then(|i| i.symbol()) {
            return Ok(name.to_string());
        }
    }
    Err(e.error("expected a name (symbol or `(rename sym \"string\")`)"))
}

fn parse_port(e: &SExpr) -> Result<Port, ParseError> {
    let items = e.list().expect("caller checked the keyword");
    let name_expr = items.get(1).ok_or_else(|| e.error("port needs a name"))?;
    let name = parse_name(name_expr)?;
    let mut direction = None;
    for item in &items[2..] {
        if item.keyword().as_deref() == Some("direction") {
            let dir = item
                .list()
                .and_then(|l| l.get(1))
                .and_then(|d| d.symbol())
                .ok_or_else(|| item.error("malformed `direction`"))?;
            direction = Some(match dir.to_ascii_uppercase().as_str() {
                "INPUT" => Direction::Input,
                "OUTPUT" => Direction::Output,
                other => {
                    return Err(item
                        .error(format!("unsupported port direction `{other}`"))
                        .with_token(other))
                }
            });
        }
    }
    let direction =
        direction.ok_or_else(|| e.error(format!("port `{name}` has no `(direction ...)`")))?;
    Ok(Port {
        name,
        direction,
        line: e.line,
        column: e.column,
    })
}

/// Extracts the referenced cell name from
/// `(instance N (viewref V (cellref C (libraryref L))))` — also accepting a
/// direct `(cellref C ...)` child, which some writers emit.
fn instance_cellref(items: &[SExpr]) -> Option<String> {
    for item in &items[2..] {
        match item.keyword().as_deref() {
            Some("viewref") => {
                for sub in item.list().unwrap_or(&[]) {
                    if sub.keyword().as_deref() == Some("cellref") {
                        if let Some(name) = sub.list().and_then(|l| l.get(1)) {
                            return parse_name(name).ok();
                        }
                    }
                }
            }
            Some("cellref") => {
                if let Some(name) = item.list().and_then(|l| l.get(1)) {
                    return parse_name(name).ok();
                }
            }
            _ => {}
        }
    }
    None
}

fn parse_instance(e: &SExpr) -> Result<Instance, ParseError> {
    let items = e.list().expect("caller checked the keyword");
    let name = parse_name(
        items
            .get(1)
            .ok_or_else(|| e.error("instance needs a name"))?,
    )?;
    let cellref = instance_cellref(items)
        .ok_or_else(|| e.error(format!("instance `{name}` has no `(cellref ...)`")))?;
    let kind = CellKind::from_lib_name(&cellref).ok_or_else(|| {
        e.error(format!(
            "unknown cell type `{cellref}` (hierarchical EDIF is not supported; \
             instances must reference library cells)"
        ))
        .with_token(cellref.clone())
    })?;
    if kind.is_port() {
        return Err(e
            .error(format!(
                "instance `{name}` instantiates port pseudo-cell `{cellref}`; \
                 declare a port in the interface instead"
            ))
            .with_token(cellref));
    }
    Ok(Instance {
        name,
        kind,
        line: e.line,
        column: e.column,
    })
}

fn parse_net(e: &SExpr) -> Result<EdifNet, ParseError> {
    let items = e.list().expect("caller checked the keyword");
    let name = parse_name(items.get(1).ok_or_else(|| e.error("net needs a name"))?)?;
    let joined = items
        .iter()
        .find(|i| i.keyword().as_deref() == Some("joined"))
        .ok_or_else(|| e.error(format!("net `{name}` has no `(joined ...)`")))?;
    let mut portrefs = Vec::new();
    for pr in &joined.list().expect("keyword implies list")[1..] {
        if pr.keyword().as_deref() != Some("portref") {
            return Err(pr.error("expected `(portref ...)` inside `joined`"));
        }
        let pr_items = pr.list().expect("keyword implies list");
        let port = parse_name(
            pr_items
                .get(1)
                .ok_or_else(|| pr.error("portref needs a port name"))?,
        )?;
        let mut instance = None;
        for extra in &pr_items[2..] {
            if extra.keyword().as_deref() == Some("instanceref") {
                instance = Some(parse_name(
                    extra
                        .list()
                        .and_then(|l| l.get(1))
                        .ok_or_else(|| extra.error("malformed `instanceref`"))?,
                )?);
            }
        }
        portrefs.push(PortRef {
            port,
            instance,
            line: pr.line,
            column: pr.column,
        });
    }
    Ok(EdifNet { name, portrefs })
}

/// Parses one `(cell ...)`, returning its structural payload when the cell
/// has `contents` (leaf library cells, which only declare an interface,
/// return `None`).
fn parse_cell(e: &SExpr) -> Result<Option<TopCell>, ParseError> {
    let items = e.list().expect("caller checked the keyword");
    let name = parse_name(items.get(1).ok_or_else(|| e.error("cell needs a name"))?)?;
    let Some(view) = items
        .iter()
        .find(|i| i.keyword().as_deref() == Some("view"))
    else {
        return Ok(None);
    };
    let view_items = view.list().expect("keyword implies list");

    let mut ports = Vec::new();
    if let Some(interface) = view_items
        .iter()
        .find(|i| i.keyword().as_deref() == Some("interface"))
    {
        for item in &interface.list().expect("keyword implies list")[1..] {
            if item.keyword().as_deref() == Some("port") {
                ports.push(parse_port(item)?);
            }
        }
    }

    let Some(contents) = view_items
        .iter()
        .find(|i| i.keyword().as_deref() == Some("contents"))
    else {
        return Ok(None);
    };
    let mut instances = Vec::new();
    let mut nets = Vec::new();
    for item in &contents.list().expect("keyword implies list")[1..] {
        match item.keyword().as_deref() {
            Some("instance") => instances.push(parse_instance(item)?),
            Some("net") => nets.push(parse_net(item)?),
            Some("comment") | None => {}
            Some(other) => {
                return Err(item
                    .error(format!("unsupported construct `{other}` in `contents`"))
                    .with_token(other.to_string()))
            }
        }
    }
    Ok(Some(TopCell {
        name,
        ports,
        instances,
        nets,
    }))
}

// ---------------------------------------------------------------------------
// Netlist construction
// ---------------------------------------------------------------------------

/// Maps a pin name to its index on `kind` (case-insensitive), distinguishing
/// inputs from the output pin.
enum Pin {
    Input(usize),
    Output,
}

fn resolve_pin(kind: CellKind, pin: &str) -> Option<Pin> {
    if pin.eq_ignore_ascii_case(kind.output_pin_name()) {
        return Some(Pin::Output);
    }
    (0..kind.num_inputs())
        .find(|&i| pin.eq_ignore_ascii_case(&kind.input_pin_name(i)))
        .map(Pin::Input)
}

fn build_netlist(top: TopCell) -> Result<Netlist, ParseError> {
    let mut netlist = Netlist::new(top.name);
    let mut input_ports: HashMap<&str, NetId> = HashMap::new();
    let mut output_ports: Vec<&Port> = Vec::new();
    for port in &top.ports {
        match port.direction {
            Direction::Input => {
                let (_, net) = netlist.add_input(&port.name);
                input_ports.insert(port.name.as_str(), net);
            }
            Direction::Output => output_ports.push(port),
        }
    }

    let instances: HashMap<&str, &Instance> =
        top.instances.iter().map(|i| (i.name.as_str(), i)).collect();

    // Per-instance pin connections and per-output-port nets, filled while
    // walking the EDIF nets.
    let mut connections: HashMap<&str, Vec<Option<NetId>>> = top
        .instances
        .iter()
        .map(|i| (i.name.as_str(), vec![None; i.kind.num_inputs() + 1]))
        .collect();
    let mut output_port_nets: HashMap<&str, NetId> = HashMap::new();

    for net in &top.nets {
        // The electrical net: an EDIF net joined to a top input port aliases
        // the net that input already drives; otherwise it is created fresh
        // under its EDIF name.
        let mut net_id: Option<NetId> = None;
        for pr in &net.portrefs {
            if pr.instance.is_none() {
                if let Some(&driven) = input_ports.get(pr.port.as_str()) {
                    if let Some(existing) = net_id {
                        if existing != driven {
                            return Err(ParseError::new(
                                pr.line,
                                pr.column,
                                format!("net `{}` joins two input ports", net.name),
                            ));
                        }
                    }
                    net_id = Some(driven);
                }
            }
        }
        let net_id = net_id.unwrap_or_else(|| netlist.add_net(&net.name));

        for pr in &net.portrefs {
            match &pr.instance {
                None => {
                    if input_ports.contains_key(pr.port.as_str()) {
                        continue; // already aliased above
                    }
                    if top
                        .ports
                        .iter()
                        .any(|p| p.name == pr.port && p.direction == Direction::Output)
                    {
                        output_port_nets.insert(pr.port.as_str(), net_id);
                    } else {
                        return Err(ParseError::new(
                            pr.line,
                            pr.column,
                            format!("portref `{}` names no declared port", pr.port),
                        )
                        .with_token(pr.port.clone()));
                    }
                }
                Some(inst_name) => {
                    let instance = instances.get(inst_name.as_str()).ok_or_else(|| {
                        ParseError::new(
                            pr.line,
                            pr.column,
                            format!("instanceref `{inst_name}` names no declared instance"),
                        )
                        .with_token(inst_name.clone())
                    })?;
                    let pin = resolve_pin(instance.kind, &pr.port).ok_or_else(|| {
                        ParseError::new(
                            pr.line,
                            pr.column,
                            format!(
                                "cell `{}` ({}) has no pin `{}`",
                                inst_name, instance.kind, pr.port
                            ),
                        )
                        .with_token(pr.port.clone())
                    })?;
                    let slots = connections
                        .get_mut(inst_name.as_str())
                        .expect("instance map is complete");
                    let slot = match pin {
                        Pin::Input(i) => &mut slots[i],
                        Pin::Output => {
                            let last = slots.len() - 1;
                            &mut slots[last]
                        }
                    };
                    if slot.is_some() {
                        return Err(ParseError::new(
                            pr.line,
                            pr.column,
                            format!("pin `{}` of `{inst_name}` is joined twice", pr.port),
                        ));
                    }
                    *slot = Some(net_id);
                }
            }
        }
    }

    for instance in &top.instances {
        let slots = &connections[instance.name.as_str()];
        let mut inputs = Vec::with_capacity(instance.kind.num_inputs());
        for (i, slot) in slots[..instance.kind.num_inputs()].iter().enumerate() {
            inputs.push(slot.ok_or_else(|| {
                ParseError::new(
                    instance.line,
                    instance.column,
                    format!(
                        "instance `{}`: pin `{}` is not joined to any net",
                        instance.name,
                        instance.kind.input_pin_name(i)
                    ),
                )
            })?);
        }
        // A dangling output is legal EDIF; give it an anonymous net.
        let output = if instance.kind.has_output() {
            Some(
                slots[instance.kind.num_inputs()]
                    .unwrap_or_else(|| netlist.add_net(format!("{}__y", instance.name))),
            )
        } else {
            None
        };
        netlist
            .try_add_cell(instance.kind, &instance.name, &inputs, output)
            .map_err(|e| {
                ParseError::new(instance.line, instance.column, e.to_string())
                    .with_token(instance.name.clone())
            })?;
    }

    for port in output_ports {
        let net = output_port_nets.get(port.name.as_str()).ok_or_else(|| {
            ParseError::new(
                port.line,
                port.column,
                format!("output port `{}` is not joined to any net", port.name),
            )
        })?;
        netlist.add_output(&port.name, *net);
    }
    Ok(netlist)
}

/// Parses a structural EDIF 2.0.0 subset document into a [`Netlist`].
///
/// The top cell is the one referenced by the `(design ...)` declaration when
/// present, otherwise the last cell carrying `contents`.
///
/// # Errors
///
/// Returns a [`ParseError`] on malformed s-expressions, missing EDIF
/// structure, unknown cell or pin references, and double-driven nets.
pub fn parse_edif(text: &str) -> Result<Netlist, ParseError> {
    let mut lexer = Lexer::new(text);
    let root = lexer.parse_expr()?;
    lexer.skip_ws();
    if lexer.peek().is_some() {
        return Err(lexer.error("trailing text after the `(edif ...)` document"));
    }
    if root.keyword().as_deref() != Some("edif") {
        return Err(root.error("expected an `(edif ...)` document"));
    }
    let items = root.list().expect("keyword implies list");

    let mut design_ref: Option<String> = None;
    let mut cells: Vec<TopCell> = Vec::new();
    for item in items.get(2..).unwrap_or(&[]) {
        match item.keyword().as_deref() {
            Some("library") | Some("external") => {
                let library = item.list().expect("keyword implies list");
                for sub in library.get(2..).unwrap_or(&[]) {
                    if sub.keyword().as_deref() == Some("cell") {
                        if let Some(cell) = parse_cell(sub)? {
                            cells.push(cell);
                        }
                    }
                }
            }
            Some("design") => {
                if let Some(cellref) = item
                    .list()
                    .unwrap_or(&[])
                    .iter()
                    .find(|i| i.keyword().as_deref() == Some("cellref"))
                {
                    design_ref = cellref
                        .list()
                        .and_then(|l| l.get(1))
                        .and_then(|n| parse_name(n).ok());
                }
            }
            _ => {} // edifversion, ediflevel, keywordmap, status, comment, …
        }
    }

    let top = match design_ref {
        Some(name) => {
            let position = cells.iter().position(|c| c.name == name).ok_or_else(|| {
                root.error(format!(
                    "design references cell `{name}`, which has no contents"
                ))
            })?;
            cells.swap_remove(position)
        }
        None => cells
            .pop()
            .ok_or_else(|| root.error("no cell with `(contents ...)` found"))?,
    };
    build_netlist(top)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::stats;

    /// A half adder in the supported EDIF subset.
    const HALF_ADDER: &str = r#"
(edif ha_design
  (edifVersion 2 0 0)
  (edifLevel 0)
  (keywordMap (keywordLevel 0))
  (status (written (timeStamp 2013 3 18 12 0 0)))
  (library work
    (edifLevel 0)
    (technology (numberDefinition))
    (cell XOR2 (cellType GENERIC)
      (view netlist (viewType NETLIST)
        (interface (port A0 (direction INPUT))
                   (port A1 (direction INPUT))
                   (port Y (direction OUTPUT)))))
    (cell AND2 (cellType GENERIC)
      (view netlist (viewType NETLIST)
        (interface (port A0 (direction INPUT))
                   (port A1 (direction INPUT))
                   (port Y (direction OUTPUT)))))
    (cell ha (cellType GENERIC)
      (view netlist (viewType NETLIST)
        (interface (port a (direction INPUT))
                   (port b (direction INPUT))
                   (port sum (direction OUTPUT))
                   (port carry (direction OUTPUT)))
        (contents
          (instance u_sum (viewRef netlist (cellRef XOR2 (libraryRef work))))
          (instance u_carry (viewRef netlist (cellRef AND2 (libraryRef work))))
          (net n_a (joined (portRef a)
                           (portRef A0 (instanceRef u_sum))
                           (portRef A0 (instanceRef u_carry))))
          (net n_b (joined (portRef b)
                           (portRef A1 (instanceRef u_sum))
                           (portRef A1 (instanceRef u_carry))))
          (net n_sum (joined (portRef Y (instanceRef u_sum)) (portRef sum)))
          (net n_carry (joined (portRef Y (instanceRef u_carry)) (portRef carry)))))))
  (design ha (cellRef ha (libraryRef work))))
"#;

    #[test]
    fn parses_the_half_adder() {
        let n = parse_edif(HALF_ADDER).unwrap();
        assert_eq!(n.name(), "ha");
        let s = stats(&n);
        assert_eq!(s.primary_inputs, 2);
        assert_eq!(s.primary_outputs, 2);
        assert_eq!(s.combinational_cells, 2);
        // The AND gate is fed by both inputs.
        let carry = n.find_cell("u_carry").unwrap();
        assert_eq!(n.cell(carry).inputs().len(), 2);
    }

    #[test]
    fn sequential_cells_and_renames_work() {
        let src = r#"
(edif top
  (library work
    (cell DFF (cellType GENERIC)
      (view netlist (viewType NETLIST)
        (interface (port D (direction INPUT)) (port CK (direction INPUT))
                   (port Q (direction OUTPUT)))))
    (cell top (cellType GENERIC)
      (view netlist (viewType NETLIST)
        (interface (port d (direction INPUT))
                   (port ck (direction INPUT))
                   (port (rename q_r "q.out") (direction OUTPUT)))
        (contents
          (instance ff (viewRef netlist (cellRef DFF (libraryRef work))))
          (net nd (joined (portRef d) (portRef D (instanceRef ff))))
          (net nck (joined (portRef ck) (portRef CK (instanceRef ff))))
          (net nq (joined (portRef Q (instanceRef ff)) (portRef (rename q_r "q.out")))))))))
"#;
        let n = parse_edif(src).unwrap();
        assert_eq!(n.sequential_cells().len(), 1);
        assert_eq!(n.primary_outputs().len(), 1);
        let po = n.primary_outputs()[0];
        assert_eq!(n.cell(po).name(), "q.out");
    }

    #[test]
    fn missing_pin_is_an_error() {
        let src = r#"
(edif top
  (library work
    (cell top (cellType GENERIC)
      (view v (viewType NETLIST)
        (interface (port a (direction INPUT)) (port y (direction OUTPUT)))
        (contents
          (instance u1 (viewRef v (cellRef AND2 (libraryRef work))))
          (net n1 (joined (portRef a) (portRef A0 (instanceRef u1))))
          (net n2 (joined (portRef Y (instanceRef u1)) (portRef y))))))))
"#;
        let err = parse_edif(src).unwrap_err();
        assert!(err.message.contains("pin `A1` is not joined"), "{err}");
    }

    #[test]
    fn unknown_cell_reports_token_and_location() {
        let src = r#"
(edif top
  (library work
    (cell top (cellType GENERIC)
      (view v (viewType NETLIST)
        (interface (port a (direction INPUT)) (port y (direction OUTPUT)))
        (contents
          (instance u1 (viewRef v (cellRef LATCH (libraryRef work))))
          (net n1 (joined (portRef a) (portRef D (instanceRef u1)))))))))
"#;
        let err = parse_edif(src).unwrap_err();
        assert!(err.message.contains("unknown cell type `LATCH`"), "{err}");
        assert_eq!(err.token.as_deref(), Some("LATCH"));
        assert!(err.line >= 8, "line was {}", err.line);
    }

    #[test]
    fn unbalanced_parens_are_an_error() {
        let err = parse_edif("(edif top (library work").unwrap_err();
        assert!(err.message.contains("unterminated list"), "{err}");
    }

    #[test]
    fn structurally_short_documents_error_instead_of_panicking() {
        // Lists shorter than the grammar expects must produce a ParseError,
        // never a slice-index panic.
        for src in [
            "(edif)",
            "(edif t)",
            "(edif t (library))",
            "(edif t (library w))",
            "(edif t (library w (cell)))",
        ] {
            let err = parse_edif(src).unwrap_err();
            assert!(
                err.message.contains("no cell") || err.message.contains("needs a name"),
                "{src}: {err}"
            );
        }
    }

    #[test]
    fn unknown_pin_is_an_error() {
        let src = r#"
(edif top
  (library work
    (cell top (cellType GENERIC)
      (view v (viewType NETLIST)
        (interface (port a (direction INPUT)))
        (contents
          (instance u1 (viewRef v (cellRef INV (libraryRef work))))
          (net n1 (joined (portRef a) (portRef ZZ (instanceRef u1)))))))))
"#;
        let err = parse_edif(src).unwrap_err();
        assert!(err.message.contains("has no pin `ZZ`"), "{err}");
    }
}
