//! ISCAS-85/89 `.bench` reader and writer.
//!
//! The `.bench` format is the de-facto interchange format of the ATPG
//! literature (the ISCAS-85 combinational and ISCAS-89 sequential benchmark
//! suites are distributed in it): one statement per line, either a port
//! declaration `INPUT(a)` / `OUTPUT(y)` or a gate `y = NAND(a, b)`.
//!
//! Supported operators: `AND`, `NAND`, `OR`, `NOR`, `XOR`, `XNOR` (arity from
//! the argument count), `NOT`/`INV`, `BUF`/`BUFF`, `DFF`, plus the extensions
//! `MUX` (pin order `D0, D1, S`, matching [`CellKind::Mux2`]), and
//! `TIE0`/`TIE1`/`CONST0`/`CONST1` for the constant drivers. Operator names
//! are case-insensitive.
//!
//! ISCAS-89 flip-flops have no explicit clock pin. The reader connects every
//! `DFF` to a single global clock input: the net named by a `#@ clock <name>`
//! directive when present (the writer always emits one), otherwise a fresh
//! primary input named `CK`. The writer refuses designs it cannot express —
//! scan flip-flops, flip-flops with asynchronous resets, more than one clock
//! domain, gated or generated clocks — rather than silently dropping
//! structure.

use super::ParseError;
use crate::{CellKind, NetId, Netlist};
use std::collections::HashMap;
use std::fmt;

/// Default name of the synthesized clock input when a sequential `.bench`
/// file carries no `#@ clock` directive.
pub const DEFAULT_CLOCK_NAME: &str = "CK";

// ---------------------------------------------------------------------------
// Reader
// ---------------------------------------------------------------------------

/// One parsed statement, with the line it came from.
enum Statement {
    Input {
        name: String,
        line: usize,
    },
    Output {
        name: String,
        line: usize,
    },
    Gate {
        target: String,
        op: String,
        op_column: usize,
        args: Vec<String>,
        line: usize,
    },
}

/// Maps a `.bench` operator (already uppercased) and argument count to a
/// [`CellKind`]. `None` means the operator itself is unknown; `Some(Err(_))`
/// means the operator is known but the arity is invalid.
fn op_kind(op: &str, arity: usize) -> Option<Result<CellKind, String>> {
    let variadic = |make: fn(u8) -> CellKind| {
        Some(if (2..=32).contains(&arity) {
            Ok(make(arity as u8))
        } else {
            Err(format!("expects 2..=32 arguments, got {arity}"))
        })
    };
    let fixed = |kind: CellKind, expected: usize| {
        Some(if arity == expected {
            Ok(kind)
        } else {
            Err(format!("expects {expected} argument(s), got {arity}"))
        })
    };
    match op {
        "AND" => variadic(CellKind::And),
        "NAND" => variadic(CellKind::Nand),
        "OR" => variadic(CellKind::Or),
        "NOR" => variadic(CellKind::Nor),
        "XOR" => variadic(CellKind::Xor),
        "XNOR" => variadic(CellKind::Xnor),
        "NOT" | "INV" => fixed(CellKind::Not, 1),
        "BUF" | "BUFF" => fixed(CellKind::Buf, 1),
        "DFF" => fixed(CellKind::Dff { reset: None }, 1),
        "MUX" | "MUX2" => fixed(CellKind::Mux2, 3),
        "TIE0" | "CONST0" => fixed(CellKind::Tie0, 0),
        "TIE1" | "CONST1" => fixed(CellKind::Tie1, 0),
        _ => None,
    }
}

/// Splits `inner` (the text between the parentheses) into trimmed argument
/// names, rejecting empty items. An entirely blank `inner` is zero arguments.
fn split_args(inner: &str, line: usize, column: usize) -> Result<Vec<String>, ParseError> {
    if inner.trim().is_empty() {
        return Ok(Vec::new());
    }
    inner
        .split(',')
        .map(|arg| {
            let arg = arg.trim();
            if arg.is_empty() {
                Err(ParseError::new(
                    line,
                    column,
                    "empty argument in gate connection list",
                ))
            } else {
                Ok(arg.to_string())
            }
        })
        .collect()
}

/// 1-based character column of the byte offset `at` within `text`.
fn column_of(text: &str, at: usize) -> usize {
    text[..at.min(text.len())].chars().count() + 1
}

/// Parses one `target = OP(args...)` statement (`eq` is the byte offset of
/// the `=` within `code`) and appends it to `statements`.
fn parse_gate_statement(
    code: &str,
    trimmed: &str,
    eq: usize,
    line: usize,
    stmt_column: usize,
    statements: &mut Vec<Statement>,
) -> Result<(), ParseError> {
    let target = code[..eq].trim();
    if target.is_empty() {
        return Err(
            ParseError::new(line, stmt_column, "missing target net before `=`").with_token(trimmed),
        );
    }
    // Byte offset of the trimmed right-hand side within `code`, so error
    // columns point into the original line.
    let after_eq = &code[eq + 1..];
    let rhs_start = eq + 1 + (after_eq.len() - after_eq.trim_start().len());
    let rhs = after_eq.trim();
    let open = rhs.find('(').ok_or_else(|| {
        ParseError::new(
            line,
            column_of(code, rhs_start),
            "expected `OP(args...)` after `=`",
        )
        .with_token(rhs)
    })?;
    let close = rhs.rfind(')').filter(|&c| c > open).ok_or_else(|| {
        ParseError::new(
            line,
            column_of(code, rhs_start),
            "unterminated gate connection list",
        )
        .with_token(rhs)
    })?;
    if !rhs[close + 1..].trim().is_empty() {
        return Err(ParseError::new(
            line,
            column_of(code, rhs_start + close + 1),
            "trailing text after gate connection list",
        )
        .with_token(rhs[close + 1..].trim()));
    }
    let op = rhs[..open].trim();
    if op.is_empty() {
        return Err(ParseError::new(
            line,
            column_of(code, rhs_start),
            "missing operator after `=`",
        )
        .with_token(rhs));
    }
    statements.push(Statement::Gate {
        target: target.to_string(),
        op: op.to_ascii_uppercase(),
        op_column: column_of(code, rhs_start),
        args: split_args(
            &rhs[open + 1..close],
            line,
            column_of(code, rhs_start + open + 1),
        )?,
        line,
    });
    Ok(())
}

/// Parses ISCAS-85/89 `.bench` text into a [`Netlist`].
///
/// Statements may appear in any order (gates may reference nets that are
/// declared or driven later in the file), matching the distributed ISCAS
/// files.
///
/// # Errors
///
/// Returns a [`ParseError`] on malformed statements, unknown operators,
/// wrong operator arity, nets that are referenced but never driven, and nets
/// driven more than once.
pub fn parse_bench(text: &str) -> Result<Netlist, ParseError> {
    let mut statements: Vec<Statement> = Vec::new();
    let mut clock_name: Option<String> = None;
    let mut design_name: Option<String> = None;

    for (line_index, raw_line) in text.lines().enumerate() {
        let line = line_index + 1;
        // Directives ride on comment lines so foreign tools ignore them.
        if let Some(directive) = raw_line.trim().strip_prefix("#@") {
            let mut words = directive.split_whitespace();
            match words.next() {
                Some("clock") => {
                    clock_name = Some(words.next().map(str::to_string).ok_or_else(|| {
                        ParseError::new(line, 1, "`#@ clock` directive needs a net name")
                    })?);
                }
                Some("name") => {
                    design_name = words.next().map(str::to_string);
                }
                _ => {} // Unknown directives are ignored, like plain comments.
            }
            continue;
        }
        let code = raw_line.split('#').next().unwrap_or("");
        let trimmed = code.trim();
        if trimmed.is_empty() {
            continue;
        }
        let stmt_column = column_of(raw_line, raw_line.len() - raw_line.trim_start().len());

        // A `=` anywhere makes this a gate statement — checked before the
        // port-declaration prefixes so a target net named e.g.
        // `output_stage` is not misread as a malformed OUTPUT declaration
        // (the writer happily emits such names).
        if let Some(eq) = code.find('=') {
            parse_gate_statement(code, trimmed, eq, line, stmt_column, &mut statements)?;
        } else if let Some(rest) = trimmed
            .strip_prefix("INPUT")
            .or_else(|| trimmed.strip_prefix("input"))
        {
            let name = rest
                .trim()
                .strip_prefix('(')
                .and_then(|r| r.strip_suffix(')'))
                .map(str::trim)
                .filter(|n| !n.is_empty())
                .ok_or_else(|| {
                    ParseError::new(
                        line,
                        stmt_column,
                        "malformed INPUT declaration, expected `INPUT(name)`",
                    )
                    .with_token(trimmed)
                })?;
            statements.push(Statement::Input {
                name: name.to_string(),
                line,
            });
        } else if let Some(rest) = trimmed
            .strip_prefix("OUTPUT")
            .or_else(|| trimmed.strip_prefix("output"))
        {
            let name = rest
                .trim()
                .strip_prefix('(')
                .and_then(|r| r.strip_suffix(')'))
                .map(str::trim)
                .filter(|n| !n.is_empty())
                .ok_or_else(|| {
                    ParseError::new(
                        line,
                        stmt_column,
                        "malformed OUTPUT declaration, expected `OUTPUT(name)`",
                    )
                    .with_token(trimmed)
                })?;
            statements.push(Statement::Output {
                name: name.to_string(),
                line,
            });
        } else {
            return Err(ParseError::new(
                line,
                stmt_column,
                "expected `INPUT(...)`, `OUTPUT(...)` or `net = OP(...)`",
            )
            .with_token(trimmed));
        }
    }

    build_netlist(statements, clock_name, design_name)
}

/// Second pass: materialise the statements into a netlist. Inputs first,
/// then every gate target net, then the gates, then the output pseudo-cells —
/// so declaration order in the file does not matter.
fn build_netlist(
    statements: Vec<Statement>,
    clock_name: Option<String>,
    design_name: Option<String>,
) -> Result<Netlist, ParseError> {
    let mut netlist = Netlist::new(design_name.unwrap_or_else(|| "bench".to_string()));
    let mut nets: HashMap<String, NetId> = HashMap::new();

    for stmt in &statements {
        if let Statement::Input { name, line } = stmt {
            if nets.contains_key(name) {
                return Err(
                    ParseError::new(*line, 1, format!("duplicate INPUT `{name}`"))
                        .with_token(name.clone()),
                );
            }
            let (_, net) = netlist.add_input(name);
            nets.insert(name.clone(), net);
        }
    }
    // Create every gate target net before wiring anything, so gates can
    // reference later-defined nets.
    for stmt in &statements {
        if let Statement::Gate { target, line, .. } = stmt {
            if nets.contains_key(target) {
                // Either a second driver or a gate driving an INPUT net; both
                // are invalid and `try_add_cell` would also catch the former.
                return Err(ParseError::new(
                    *line,
                    1,
                    format!("net `{target}` is driven more than once"),
                )
                .with_token(target.clone()));
            }
            nets.insert(target.clone(), netlist.add_net(target));
        }
    }

    let needs_clock = statements
        .iter()
        .any(|s| matches!(s, Statement::Gate { op, .. } if op == "DFF"));
    let clock_net = if needs_clock {
        let name = clock_name.unwrap_or_else(|| DEFAULT_CLOCK_NAME.to_string());
        Some(match nets.get(&name) {
            Some(&net) => net,
            None => {
                let (_, net) = netlist.add_input(&name);
                nets.insert(name, net);
                net
            }
        })
    } else {
        None
    };

    for stmt in &statements {
        let Statement::Gate {
            target,
            op,
            op_column,
            args,
            line,
        } = stmt
        else {
            continue;
        };
        let kind = match op_kind(op, args.len()) {
            Some(Ok(kind)) => kind,
            Some(Err(arity_message)) => {
                return Err(ParseError::new(
                    *line,
                    *op_column,
                    format!("operator `{op}` {arity_message}"),
                )
                .with_token(op.clone()))
            }
            None => {
                return Err(
                    ParseError::new(*line, *op_column, format!("unknown operator `{op}`"))
                        .with_token(op.clone()),
                )
            }
        };
        let mut inputs = Vec::with_capacity(kind.num_inputs());
        for arg in args {
            let net = *nets.get(arg).ok_or_else(|| {
                ParseError::new(*line, 1, format!("net `{arg}` is never driven"))
                    .with_token(arg.clone())
            })?;
            inputs.push(net);
        }
        if kind.is_sequential() {
            inputs.push(clock_net.expect("clock net exists when DFFs are present"));
        }
        netlist
            .try_add_cell(kind, target, &inputs, Some(nets[target]))
            .map_err(|e| ParseError::new(*line, 1, e.to_string()).with_token(target.clone()))?;
    }

    for stmt in &statements {
        if let Statement::Output { name, line } = stmt {
            let net = *nets.get(name).ok_or_else(|| {
                ParseError::new(*line, 1, format!("net `{name}` is never driven"))
                    .with_token(name.clone())
            })?;
            netlist.add_output(name, net);
        }
    }
    Ok(netlist)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

/// Error produced while serialising a netlist to `.bench`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WriteError {
    /// The design contains a cell kind the format cannot express (scan
    /// flip-flops, flip-flops with asynchronous resets).
    UnsupportedCell {
        /// Instance name of the offending cell.
        cell: String,
        /// The kind that has no `.bench` encoding.
        kind: CellKind,
    },
    /// The design clocks its flip-flops from more than one net, or from a net
    /// that is not a primary input.
    UnsupportedClock {
        /// Description of the clocking structure.
        detail: String,
    },
    /// A net name contains characters the format cannot quote
    /// (whitespace, `(`, `)`, `,`, `=` or `#`).
    UnencodableName {
        /// The offending name.
        name: String,
    },
}

impl fmt::Display for WriteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WriteError::UnsupportedCell { cell, kind } => {
                write!(f, "cell `{cell}` of kind {kind} has no .bench encoding")
            }
            WriteError::UnsupportedClock { detail } => {
                write!(f, "unsupported clocking for .bench: {detail}")
            }
            WriteError::UnencodableName { name } => {
                write!(f, "name `{name}` cannot be encoded in .bench")
            }
        }
    }
}

impl std::error::Error for WriteError {}

fn encode_name(name: &str) -> Result<&str, WriteError> {
    let ok = !name.is_empty()
        && !name
            .chars()
            .any(|c| c.is_whitespace() || matches!(c, '(' | ')' | ',' | '=' | '#'));
    if ok {
        Ok(name)
    } else {
        Err(WriteError::UnencodableName {
            name: name.to_string(),
        })
    }
}

/// Serialises a netlist to ISCAS-style `.bench` text.
///
/// Flip-flops are written as single-argument `DFF(d)` gates — the format has
/// no clock pin — and the common clock is recorded in a `#@ clock` directive
/// the reader honours, so a write→parse round-trip reproduces the design
/// exactly (the directive line reads as a plain comment to foreign tools).
/// Dead cells are skipped, as in the Verilog writer.
///
/// # Errors
///
/// See [`WriteError`]; scan flip-flops, asynchronous resets, multiple clock
/// domains and names the format cannot express are rejected.
pub fn write_bench(netlist: &Netlist) -> Result<String, WriteError> {
    // The single clock domain, if any flip-flop survives.
    let mut clock: Option<NetId> = None;
    for (_, cell) in netlist.live_cells() {
        let kind = cell.kind();
        if !kind.is_sequential() {
            continue;
        }
        if !matches!(kind, CellKind::Dff { reset: None }) {
            return Err(WriteError::UnsupportedCell {
                cell: cell.name().to_string(),
                kind,
            });
        }
        let ck = cell.inputs()[kind.clock_pin().expect("sequential kind") as usize];
        // The format's implicit clock is re-created as a primary input by
        // the reader, so anything else (a gated or generated clock) would
        // not round-trip and is rejected.
        let driven_by_input = netlist
            .driver_of(ck)
            .is_some_and(|driver| netlist.cell(driver).kind() == CellKind::Input);
        if !driven_by_input {
            return Err(WriteError::UnsupportedClock {
                detail: format!(
                    "clock net `{}` is not driven by a primary input",
                    netlist.net(ck).name()
                ),
            });
        }
        match clock {
            None => clock = Some(ck),
            Some(existing) if existing == ck => {}
            Some(existing) => {
                return Err(WriteError::UnsupportedClock {
                    detail: format!(
                        "flip-flops on two clock nets (`{}` and `{}`)",
                        netlist.net(existing).name(),
                        netlist.net(ck).name()
                    ),
                })
            }
        }
    }

    let mut out = String::new();
    out.push_str(&format!("# {}\n", netlist.name()));
    out.push_str(&format!("#@ name {}\n", encode_name(netlist.name())?));
    if let Some(ck) = clock {
        out.push_str(&format!(
            "#@ clock {}\n",
            encode_name(netlist.net(ck).name())?
        ));
    }

    for pi in netlist.primary_inputs() {
        if netlist.cell(pi).is_dead() {
            continue;
        }
        let net = netlist.output_net(pi).expect("input drives a net");
        out.push_str(&format!(
            "INPUT({})\n",
            encode_name(netlist.net(net).name())?
        ));
    }
    for po in netlist.primary_outputs() {
        if netlist.cell(po).is_dead() {
            continue;
        }
        let net = netlist.cell(po).inputs()[0];
        out.push_str(&format!(
            "OUTPUT({})\n",
            encode_name(netlist.net(net).name())?
        ));
    }
    out.push('\n');

    for (_, cell) in netlist.live_cells() {
        let kind = cell.kind();
        if kind.is_port() {
            continue;
        }
        let target = cell.output().expect("non-port cells drive a net");
        let op = match kind {
            CellKind::And(_) => "AND",
            CellKind::Nand(_) => "NAND",
            CellKind::Or(_) => "OR",
            CellKind::Nor(_) => "NOR",
            CellKind::Xor(_) => "XOR",
            CellKind::Xnor(_) => "XNOR",
            CellKind::Not => "NOT",
            CellKind::Buf => "BUFF",
            CellKind::Mux2 => "MUX",
            CellKind::Tie0 => "TIE0",
            CellKind::Tie1 => "TIE1",
            CellKind::Dff { reset: None } => "DFF",
            other => {
                return Err(WriteError::UnsupportedCell {
                    cell: cell.name().to_string(),
                    kind: other,
                })
            }
        };
        // The clock pin is implicit in the format; drop it for flip-flops.
        let data_pins: &[NetId] = if kind.is_sequential() {
            &cell.inputs()[..1]
        } else {
            cell.inputs()
        };
        let args = data_pins
            .iter()
            .map(|&n| encode_name(netlist.net(n).name()).map(str::to_string))
            .collect::<Result<Vec<_>, _>>()?
            .join(", ");
        out.push_str(&format!(
            "{} = {}({})\n",
            encode_name(netlist.net(target).name())?,
            op,
            args
        ));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::stats;
    use crate::NetlistBuilder;

    /// The genuine ISCAS-85 c17 circuit.
    const C17: &str = "
# c17
INPUT(1)
INPUT(2)
INPUT(3)
INPUT(6)
INPUT(7)
OUTPUT(22)
OUTPUT(23)
10 = NAND(1, 3)
11 = NAND(3, 6)
16 = NAND(2, 11)
19 = NAND(11, 7)
22 = NAND(10, 16)
23 = NAND(16, 19)
";

    #[test]
    fn parses_c17() {
        let n = parse_bench(C17).unwrap();
        let s = stats(&n);
        assert_eq!(s.primary_inputs, 5);
        assert_eq!(s.primary_outputs, 2);
        assert_eq!(s.combinational_cells, 6);
        assert_eq!(s.flip_flops, 0);
    }

    #[test]
    fn statement_order_does_not_matter() {
        let shuffled = "
OUTPUT(y)
y = AND(g, b)
g = NOT(a)
INPUT(a)
INPUT(b)
";
        let n = parse_bench(shuffled).unwrap();
        assert_eq!(n.primary_inputs().len(), 2);
        assert_eq!(stats(&n).combinational_cells, 2);
    }

    #[test]
    fn sequential_bench_synthesizes_a_clock() {
        let src = "
INPUT(d)
OUTPUT(q)
q = DFF(d)
";
        let n = parse_bench(src).unwrap();
        let s = stats(&n);
        assert_eq!(s.flip_flops, 1);
        // d plus the synthesized CK.
        assert_eq!(s.primary_inputs, 2);
        assert!(n.find_net(DEFAULT_CLOCK_NAME).is_some());
    }

    #[test]
    fn clock_directive_names_the_clock() {
        let src = "
#@ clock clk
INPUT(d)
INPUT(clk)
OUTPUT(q)
q = DFF(d)
";
        let n = parse_bench(src).unwrap();
        assert_eq!(
            stats(&n).primary_inputs,
            2,
            "directive reuses the declared input"
        );
        let ff = n.sequential_cells()[0];
        let ck_net = n.cell(ff).inputs()[1];
        assert_eq!(n.net(ck_net).name(), "clk");
    }

    #[test]
    fn mux_and_ties_are_supported_extensions() {
        let src = "
INPUT(a)
INPUT(b)
INPUT(s)
OUTPUT(y)
one = TIE1()
m = MUX(a, b, s)
y = AND(m, one)
";
        let n = parse_bench(src).unwrap();
        let s = stats(&n);
        assert_eq!(s.tie_cells, 1);
        assert_eq!(s.combinational_cells, 2);
    }

    #[test]
    fn undriven_net_is_an_error() {
        let err = parse_bench("OUTPUT(y)\ny = NOT(ghost)\n").unwrap_err();
        assert!(err.message.contains("never driven"), "{err}");
        assert_eq!(err.token.as_deref(), Some("ghost"));
        assert_eq!(err.line, 2);
    }

    #[test]
    fn double_driver_is_an_error() {
        let err = parse_bench("INPUT(a)\ny = NOT(a)\ny = BUF(a)\n").unwrap_err();
        assert!(err.message.contains("driven more than once"), "{err}");
        assert_eq!(err.line, 3);
    }

    #[test]
    fn unknown_operator_reports_location_and_token() {
        let err = parse_bench("INPUT(a)\ny = FROB(a)\n").unwrap_err();
        assert!(err.message.contains("unknown operator"), "{err}");
        assert_eq!(err.token.as_deref(), Some("FROB"));
        assert_eq!(err.line, 2);
    }

    #[test]
    fn wrong_arity_is_an_error() {
        let err = parse_bench("INPUT(a)\ny = NAND(a)\n").unwrap_err();
        assert!(err.message.contains("expects 2..=32"), "{err}");
        let err = parse_bench("INPUT(a)\ny = NOT(a, a)\n").unwrap_err();
        assert!(err.message.contains("expects 1 argument"), "{err}");
    }

    #[test]
    fn targets_named_like_port_keywords_roundtrip() {
        // `output_stage = NAND(...)` is a gate statement, not a malformed
        // OUTPUT declaration: the `=` wins over the keyword prefix.
        let src = "
INPUT(a)
INPUT(b)
OUTPUT(y)
output_stage = NAND(a, b)
input_latch = NOT(output_stage)
y = AND(output_stage, input_latch)
";
        let n = parse_bench(src).unwrap();
        assert_eq!(stats(&n).combinational_cells, 3);
        // And the writer output for such names parses back.
        let text = write_bench(&n).unwrap();
        let reparsed = parse_bench(&text).unwrap();
        assert_eq!(
            stats(&n).combinational_cells,
            stats(&reparsed).combinational_cells
        );
    }

    #[test]
    fn roundtrip_preserves_structure_including_flops() {
        let mut b = NetlistBuilder::new("rt_bench");
        let a = b.input_bus("a", 4);
        let c = b.input_bus("b", 4);
        let ck = b.input("ck");
        let zero = b.tie0();
        let (sum, carry) = b.ripple_adder(&a, &c, zero);
        let q = b.register(&sum, ck);
        b.output_bus("q", &q);
        b.output("cout", carry);
        let n = b.finish();
        let text = write_bench(&n).unwrap();
        assert!(text.contains("#@ clock ck"));
        let parsed = parse_bench(&text).unwrap();
        let s1 = stats(&n);
        let s2 = stats(&parsed);
        assert_eq!(s1.combinational_cells, s2.combinational_cells);
        assert_eq!(s1.flip_flops, s2.flip_flops);
        assert_eq!(s1.primary_inputs, s2.primary_inputs);
        assert_eq!(s1.primary_outputs, s2.primary_outputs);
        assert_eq!(s1.tie_cells, s2.tie_cells);
        assert_eq!(parsed.name(), "rt_bench");
    }

    #[test]
    fn writer_rejects_scan_flops_and_bad_names() {
        let mut n = Netlist::new("w");
        let (_, d) = n.add_input("d");
        let (_, si) = n.add_input("si");
        let (_, se) = n.add_input("se");
        let (_, ck) = n.add_input("ck");
        let q = n.add_net("q");
        n.add_cell(
            CellKind::Sdff { reset: None },
            "ff",
            &[d, si, se, ck],
            Some(q),
        );
        n.add_output("q", q);
        let err = write_bench(&n).unwrap_err();
        assert!(matches!(err, WriteError::UnsupportedCell { .. }), "{err}");

        let mut b = NetlistBuilder::new("bad name");
        let a = b.input("a w"); // whitespace cannot be encoded
        b.output("y", a);
        let err = write_bench(&b.finish()).unwrap_err();
        assert!(matches!(err, WriteError::UnencodableName { .. }), "{err}");
    }

    #[test]
    fn writer_rejects_gated_clocks() {
        let mut n = Netlist::new("gated");
        let (_, d) = n.add_input("d");
        let (_, ck) = n.add_input("ck");
        let (_, en) = n.add_input("en");
        let gck = n.add_net("gck");
        n.add_cell(CellKind::And(2), "u_gate", &[ck, en], Some(gck));
        let q = n.add_net("q");
        n.add_cell(CellKind::Dff { reset: None }, "ff", &[d, gck], Some(q));
        n.add_output("q", q);
        let err = write_bench(&n).unwrap_err();
        assert!(matches!(err, WriteError::UnsupportedClock { .. }), "{err}");
        assert!(err.to_string().contains("not driven by a primary input"));
    }

    #[test]
    fn writer_rejects_two_clock_domains() {
        let mut n = Netlist::new("two_clocks");
        let (_, d) = n.add_input("d");
        let (_, ck1) = n.add_input("ck1");
        let (_, ck2) = n.add_input("ck2");
        let q1 = n.add_net("q1");
        let q2 = n.add_net("q2");
        n.add_cell(CellKind::Dff { reset: None }, "f1", &[d, ck1], Some(q1));
        n.add_cell(CellKind::Dff { reset: None }, "f2", &[q1, ck2], Some(q2));
        n.add_output("q2", q2);
        let err = write_bench(&n).unwrap_err();
        assert!(matches!(err, WriteError::UnsupportedClock { .. }), "{err}");
    }
}
