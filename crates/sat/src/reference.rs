//! A deliberately naive DPLL reference solver.
//!
//! The differential test harness checks the CDCL core against this
//! independent implementation on random 3-SAT instances: two engines built on
//! different algorithms agreeing over thousands of instances is the
//! strongest correctness oracle available offline. Exponential in the worst
//! case — only suitable for the small instances the tests generate.

use crate::Lit;

/// Decides satisfiability of `clauses` over `num_vars` variables by
/// depth-first search with unit propagation — no learning, no heuristics.
pub fn dpll_satisfiable(num_vars: usize, clauses: &[Vec<Lit>]) -> bool {
    let mut assigns: Vec<Option<bool>> = vec![None; num_vars];
    search(clauses, &mut assigns)
}

fn search(clauses: &[Vec<Lit>], assigns: &mut Vec<Option<bool>>) -> bool {
    // Unit propagation to fixpoint, recording what this level assigned so it
    // can be undone on backtrack.
    let mut assigned_here: Vec<usize> = Vec::new();
    loop {
        let mut changed = false;
        for clause in clauses {
            let mut unassigned: Option<Lit> = None;
            let mut num_unassigned = 0;
            let mut satisfied = false;
            for &l in clause {
                match assigns[l.var().index()] {
                    Some(b) if b == l.is_positive() => {
                        satisfied = true;
                        break;
                    }
                    Some(_) => {}
                    None => {
                        unassigned = Some(l);
                        num_unassigned += 1;
                    }
                }
            }
            if satisfied {
                continue;
            }
            match num_unassigned {
                0 => {
                    // Conflict: undo and fail.
                    for v in assigned_here {
                        assigns[v] = None;
                    }
                    return false;
                }
                1 => {
                    let l = unassigned.expect("one unassigned literal");
                    assigns[l.var().index()] = Some(l.is_positive());
                    assigned_here.push(l.var().index());
                    changed = true;
                }
                _ => {}
            }
        }
        if !changed {
            break;
        }
    }
    // Branch on the first unassigned variable.
    match assigns.iter().position(|a| a.is_none()) {
        None => true,
        Some(v) => {
            for value in [true, false] {
                assigns[v] = Some(value);
                if search(clauses, assigns) {
                    return true;
                }
                assigns[v] = None;
            }
            for v in assigned_here {
                assigns[v] = None;
            }
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Var;

    fn clause(lits: &[i32]) -> Vec<Lit> {
        lits.iter()
            .map(|&l| Lit::new(Var::from_index((l.unsigned_abs() as usize) - 1), l > 0))
            .collect()
    }

    #[test]
    fn agrees_on_tiny_instances() {
        assert!(dpll_satisfiable(1, &[clause(&[1])]));
        assert!(!dpll_satisfiable(1, &[clause(&[1]), clause(&[-1])]));
        assert!(dpll_satisfiable(
            2,
            &[clause(&[1, 2]), clause(&[-1, 2]), clause(&[1, -2])]
        ));
        assert!(!dpll_satisfiable(
            2,
            &[
                clause(&[1, 2]),
                clause(&[-1, 2]),
                clause(&[1, -2]),
                clause(&[-1, -2])
            ]
        ));
    }

    #[test]
    fn empty_clause_set_is_satisfiable() {
        assert!(dpll_satisfiable(0, &[]));
        assert!(dpll_satisfiable(3, &[]));
    }
}
