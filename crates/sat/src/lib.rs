//! A small conflict-driven clause-learning (CDCL) SAT solver.
//!
//! This crate is the proof backend behind the `atpg` portfolio scheduler: the
//! identification flow escalates PODEM backtrack-budget give-ups to a SAT
//! query over the Tseitin-encoded fault machine, so the abort column of the
//! proof stage collapses into concluded verdicts. Like every dependency in
//! the workspace it is offline and self-contained — no crates.io code, no
//! `unsafe`, nothing beyond `std`.
//!
//! The solver is a classical MiniSat-style core:
//!
//! * **two-watched-literal** unit propagation,
//! * **1UIP conflict analysis** with clause learning and non-chronological
//!   backjumping,
//! * **VSIDS-style activity ordering** with phase saving,
//! * **Luby-sequence restarts**,
//! * an **assumption interface** ([`Solver::solve_with_assumptions`]) whose
//!   learned clauses are plain resolvents of the clause database — an UNSAT
//!   verdict under assumptions never contaminates later unconditioned solves,
//! * a **conflict limit** ([`Solver::set_conflict_limit`]) that turns an
//!   over-budget search into [`SolveResult::Unknown`] instead of an answer.
//!
//! # Examples
//!
//! ```
//! use sat::{Lit, SolveResult, Solver};
//!
//! let mut solver = Solver::new();
//! let a = solver.new_var();
//! let b = solver.new_var();
//! solver.add_clause(&[Lit::positive(a), Lit::positive(b)]);
//! solver.add_clause(&[Lit::negative(a)]);
//! assert_eq!(solver.solve(), SolveResult::Sat);
//! assert_eq!(solver.model_value(b), Some(true));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod dimacs;
pub mod reference;

/// A propositional variable, identified by a dense index.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Var(u32);

impl Var {
    /// The variable with the given dense index.
    pub fn from_index(index: usize) -> Var {
        Var(index as u32)
    }

    /// The dense index of this variable.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A literal: a variable or its negation.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Lit(u32);

impl Lit {
    /// The literal asserting `var` when `positive`, `¬var` otherwise.
    pub fn new(var: Var, positive: bool) -> Lit {
        Lit((var.0 << 1) | u32::from(!positive))
    }

    /// The positive literal of `var`.
    pub fn positive(var: Var) -> Lit {
        Lit::new(var, true)
    }

    /// The negative literal of `var`.
    pub fn negative(var: Var) -> Lit {
        Lit::new(var, false)
    }

    /// The variable underneath.
    pub fn var(self) -> Var {
        Var(self.0 >> 1)
    }

    /// Whether this is the positive (non-negated) literal.
    pub fn is_positive(self) -> bool {
        self.0 & 1 == 0
    }

    /// The complementary literal.
    pub fn negated(self) -> Lit {
        Lit(self.0 ^ 1)
    }

    /// Dense code (two codes per variable), the watch-list index.
    fn code(self) -> usize {
        self.0 as usize
    }
}

impl std::ops::Not for Lit {
    type Output = Lit;
    fn not(self) -> Lit {
        self.negated()
    }
}

/// Outcome of a [`Solver::solve`] / [`Solver::solve_with_assumptions`] call.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum SolveResult {
    /// A satisfying assignment exists (read it with
    /// [`Solver::model_value`] / [`Solver::model`]).
    Sat,
    /// No satisfying assignment exists (under the given assumptions, if any).
    Unsat,
    /// The conflict limit was exhausted before the search concluded.
    Unknown,
}

/// One clause of the database. `lits[0]` and `lits[1]` are the watched
/// literals; for a learnt (reason) clause `lits[0]` is the asserted literal.
#[derive(Debug)]
struct Clause {
    lits: Vec<Lit>,
}

const NO_REASON: u32 = u32::MAX;

/// Activity-ordered max-heap of decision variables (the VSIDS order), with a
/// dense position index so activity bumps can sift in place.
#[derive(Debug, Default)]
struct VarOrder {
    heap: Vec<u32>,
    /// Position of each variable in `heap`, `usize::MAX` when absent.
    pos: Vec<usize>,
}

impl VarOrder {
    fn grow(&mut self) {
        self.pos.push(usize::MAX);
    }

    fn contains(&self, v: usize) -> bool {
        self.pos[v] != usize::MAX
    }

    fn insert(&mut self, v: usize, activity: &[f64]) {
        if self.contains(v) {
            return;
        }
        self.pos[v] = self.heap.len();
        self.heap.push(v as u32);
        self.sift_up(self.heap.len() - 1, activity);
    }

    fn bump(&mut self, v: usize, activity: &[f64]) {
        if self.contains(v) {
            self.sift_up(self.pos[v], activity);
        }
    }

    fn pop(&mut self, activity: &[f64]) -> Option<usize> {
        let top = *self.heap.first()? as usize;
        let last = self.heap.pop().expect("non-empty");
        self.pos[top] = usize::MAX;
        if !self.heap.is_empty() {
            self.heap[0] = last;
            self.pos[last as usize] = 0;
            self.sift_down(0, activity);
        }
        Some(top)
    }

    fn sift_up(&mut self, mut i: usize, activity: &[f64]) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if activity[self.heap[i] as usize] <= activity[self.heap[parent] as usize] {
                break;
            }
            self.swap(i, parent);
            i = parent;
        }
    }

    fn sift_down(&mut self, mut i: usize, activity: &[f64]) {
        loop {
            let left = 2 * i + 1;
            if left >= self.heap.len() {
                break;
            }
            let right = left + 1;
            let child = if right < self.heap.len()
                && activity[self.heap[right] as usize] > activity[self.heap[left] as usize]
            {
                right
            } else {
                left
            };
            if activity[self.heap[child] as usize] <= activity[self.heap[i] as usize] {
                break;
            }
            self.swap(i, child);
            i = child;
        }
    }

    fn swap(&mut self, i: usize, j: usize) {
        self.heap.swap(i, j);
        self.pos[self.heap[i] as usize] = i;
        self.pos[self.heap[j] as usize] = j;
    }
}

/// The `i`-th term (1-based) of the Luby restart sequence
/// 1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8, …
fn luby(i: u64) -> u64 {
    // Find the finite subsequence containing index i, then recurse into it.
    let mut size = 1u64;
    let mut seq = 0u32;
    while size < i {
        seq += 1;
        size = 2 * size + 1;
    }
    let mut x = i;
    while size != x {
        size = (size - 1) / 2;
        seq -= 1;
        x %= size;
        if x == 0 {
            x = size;
        }
    }
    1u64 << seq
}

/// Conflicts granted per restart, multiplied by the Luby term.
const RESTART_BASE: u64 = 64;
/// Multiplicative VSIDS decay: activities shrink by this factor per conflict
/// (implemented by growing the bump increment).
const ACTIVITY_DECAY: f64 = 0.95;

/// A CDCL SAT solver over clauses added incrementally with
/// [`add_clause`](Solver::add_clause).
#[derive(Debug)]
pub struct Solver {
    clauses: Vec<Clause>,
    /// Watch lists indexed by literal code: clauses currently watching the
    /// literal (it sits in position 0 or 1 of the clause).
    watches: Vec<Vec<u32>>,
    /// Current assignment per variable, `None` when unassigned.
    assigns: Vec<Option<bool>>,
    /// Decision level of each assigned variable.
    level: Vec<u32>,
    /// Reason clause of each implied variable (`NO_REASON` for decisions).
    reason: Vec<u32>,
    /// Assignment trail, in chronological order.
    trail: Vec<Lit>,
    /// Trail index where each decision level starts.
    trail_lim: Vec<usize>,
    /// Propagation queue head (index into `trail`).
    qhead: usize,
    /// VSIDS activity per variable.
    activity: Vec<f64>,
    var_inc: f64,
    order: VarOrder,
    /// Saved phase per variable (last assigned polarity).
    polarity: Vec<bool>,
    /// Conflict-analysis scratch: per-variable seen marks.
    seen: Vec<bool>,
    /// Model of the most recent satisfiable solve.
    model: Vec<bool>,
    /// False once a root-level conflict proves the clause set unsatisfiable.
    ok: bool,
    conflict_limit: Option<u64>,
    /// Conflicts over the solver's lifetime (restart bookkeeping and
    /// diagnostics).
    conflicts: u64,
    /// Cooperative interrupt flag: when it reads `true` the current solve
    /// stops with [`SolveResult::Unknown`] at its next conflict.
    interrupt: Option<std::sync::Arc<std::sync::atomic::AtomicBool>>,
    /// Wall-clock deadline for each solve call, polled alongside the
    /// interrupt flag.
    deadline: Option<std::time::Instant>,
    /// Whether the most recent `Unknown` came from the interrupt flag or
    /// the deadline rather than the conflict budget.
    interrupted: bool,
}

impl Default for Solver {
    fn default() -> Solver {
        Solver::new()
    }
}

impl Solver {
    /// Creates an empty solver.
    pub fn new() -> Solver {
        Solver {
            clauses: Vec::new(),
            watches: Vec::new(),
            assigns: Vec::new(),
            level: Vec::new(),
            reason: Vec::new(),
            trail: Vec::new(),
            trail_lim: Vec::new(),
            qhead: 0,
            activity: Vec::new(),
            var_inc: 1.0,
            order: VarOrder::default(),
            polarity: Vec::new(),
            seen: Vec::new(),
            model: Vec::new(),
            ok: true,
            conflict_limit: None,
            conflicts: 0,
            interrupt: None,
            deadline: None,
            interrupted: false,
        }
    }

    /// Number of variables created so far.
    pub fn num_vars(&self) -> usize {
        self.assigns.len()
    }

    /// Number of clauses in the database, learnt clauses included.
    pub fn num_clauses(&self) -> usize {
        self.clauses.len()
    }

    /// Conflicts resolved over the solver's lifetime.
    pub fn conflicts(&self) -> u64 {
        self.conflicts
    }

    /// Caps the number of conflicts a single solve call may spend before
    /// giving up with [`SolveResult::Unknown`]. `None` (the default) searches
    /// to completion.
    pub fn set_conflict_limit(&mut self, limit: Option<u64>) {
        self.conflict_limit = limit;
    }

    /// Installs (or clears) a cooperative interrupt flag: a solve polls it
    /// at every conflict and gives up with [`SolveResult::Unknown`] once it
    /// reads `true`. The solver state stays consistent — a later solve with
    /// the flag cleared continues normally.
    pub fn set_interrupt(&mut self, flag: Option<std::sync::Arc<std::sync::atomic::AtomicBool>>) {
        self.interrupt = flag;
    }

    /// Sets (or clears) a wall-clock deadline polled alongside the
    /// interrupt flag; a solve past the deadline gives up with
    /// [`SolveResult::Unknown`].
    pub fn set_deadline(&mut self, deadline: Option<std::time::Instant>) {
        self.deadline = deadline;
    }

    /// Whether the most recent solve stopped because of the interrupt flag
    /// or the deadline (as opposed to exhausting the conflict budget).
    pub fn was_interrupted(&self) -> bool {
        self.interrupted
    }

    /// The interrupt flag reads `true` or the deadline has passed.
    fn stop_requested(&self) -> bool {
        if self
            .interrupt
            .as_ref()
            .is_some_and(|f| f.load(std::sync::atomic::Ordering::Relaxed))
        {
            return true;
        }
        self.deadline
            .is_some_and(|d| std::time::Instant::now() >= d)
    }

    /// Creates a fresh variable.
    pub fn new_var(&mut self) -> Var {
        let v = Var(self.assigns.len() as u32);
        self.assigns.push(None);
        self.level.push(0);
        self.reason.push(NO_REASON);
        self.activity.push(0.0);
        self.polarity.push(false);
        self.seen.push(false);
        self.order.grow();
        self.watches.push(Vec::new());
        self.watches.push(Vec::new());
        v
    }

    fn value_lit(&self, l: Lit) -> Option<bool> {
        self.assigns[l.var().index()].map(|b| b == l.is_positive())
    }

    /// Adds a clause (a disjunction of literals). Returns `false` when the
    /// clause makes the database trivially unsatisfiable at the root level
    /// (the solver stays usable but every solve returns `Unsat`).
    ///
    /// # Panics
    ///
    /// Panics if called while a solve is suspended mid-trail (cannot happen
    /// through the public API) or if a literal names an unknown variable.
    pub fn add_clause(&mut self, lits: &[Lit]) -> bool {
        assert!(self.trail_lim.is_empty(), "clauses are added at level 0");
        if !self.ok {
            return false;
        }
        // Simplify: drop duplicate and root-false literals, detect tautologies
        // and root-satisfied clauses.
        let mut clause: Vec<Lit> = Vec::with_capacity(lits.len());
        for &l in lits {
            assert!(l.var().index() < self.num_vars(), "unknown variable");
            if self.value_lit(l) == Some(true) || clause.contains(&l.negated()) {
                return true;
            }
            if self.value_lit(l) == Some(false) || clause.contains(&l) {
                continue;
            }
            clause.push(l);
        }
        match clause.len() {
            0 => {
                self.ok = false;
                false
            }
            1 => {
                self.unchecked_enqueue(clause[0], NO_REASON);
                // Propagate eagerly so later add_clause simplification sees
                // the consequences and a unit-level conflict is caught now.
                if self.propagate().is_some() {
                    self.ok = false;
                }
                self.ok
            }
            _ => {
                self.attach(clause);
                true
            }
        }
    }

    fn attach(&mut self, lits: Vec<Lit>) -> u32 {
        let cref = self.clauses.len() as u32;
        self.watches[lits[0].code()].push(cref);
        self.watches[lits[1].code()].push(cref);
        self.clauses.push(Clause { lits });
        cref
    }

    fn unchecked_enqueue(&mut self, l: Lit, reason: u32) {
        let v = l.var().index();
        debug_assert!(self.assigns[v].is_none());
        self.assigns[v] = Some(l.is_positive());
        self.level[v] = self.trail_lim.len() as u32;
        self.reason[v] = reason;
        self.trail.push(l);
    }

    /// Unit propagation to fixpoint. Returns the conflicting clause, if any.
    fn propagate(&mut self) -> Option<u32> {
        while self.qhead < self.trail.len() {
            let p = self.trail[self.qhead];
            self.qhead += 1;
            let false_lit = p.negated();
            // The list is moved out because new watches may be pushed onto
            // *other* lists while this one is walked.
            let mut ws = std::mem::take(&mut self.watches[false_lit.code()]);
            let mut kept = 0;
            let mut conflict = None;
            'clauses: for i in 0..ws.len() {
                let cref = ws[i];
                let clause = &mut self.clauses[cref as usize];
                if clause.lits[0] == false_lit {
                    clause.lits.swap(0, 1);
                }
                debug_assert_eq!(clause.lits[1], false_lit);
                let first = clause.lits[0];
                if self.assigns[first.var().index()].map(|b| b == first.is_positive()) == Some(true)
                {
                    ws[kept] = cref;
                    kept += 1;
                    continue 'clauses;
                }
                // Look for an unfalsified replacement watch.
                for k in 2..clause.lits.len() {
                    let l = clause.lits[k];
                    if self.assigns[l.var().index()].map(|b| b == l.is_positive()) != Some(false) {
                        clause.lits.swap(1, k);
                        let new_watch = clause.lits[1].code();
                        self.watches[new_watch].push(cref);
                        continue 'clauses;
                    }
                }
                // No replacement: the clause is unit or conflicting.
                ws[kept] = cref;
                kept += 1;
                if self.value_lit(first) == Some(false) {
                    conflict = Some(cref);
                    // Keep the remaining watchers untouched.
                    for j in i + 1..ws.len() {
                        ws[kept] = ws[j];
                        kept += 1;
                    }
                    break 'clauses;
                }
                self.unchecked_enqueue(first, cref);
            }
            ws.truncate(kept);
            debug_assert!(self.watches[false_lit.code()].is_empty());
            self.watches[false_lit.code()] = ws;
            if conflict.is_some() {
                self.qhead = self.trail.len();
                return conflict;
            }
        }
        None
    }

    fn bump_var(&mut self, v: usize) {
        self.activity[v] += self.var_inc;
        if self.activity[v] > 1e100 {
            for a in &mut self.activity {
                *a *= 1e-100;
            }
            self.var_inc *= 1e-100;
        }
        self.order.bump(v, &self.activity);
    }

    /// 1UIP conflict analysis: derives the asserting learnt clause (first
    /// literal asserted) and the backjump level.
    fn analyze(&mut self, mut confl: u32) -> (Vec<Lit>, u32) {
        let current_level = self.trail_lim.len() as u32;
        let mut learnt: Vec<Lit> = vec![Lit(0)]; // placeholder for the 1UIP
        let mut counter = 0usize;
        let mut index = self.trail.len();
        let mut p: Option<Lit> = None;

        loop {
            let clause = &self.clauses[confl as usize];
            // For a reason clause, lits[0] is the literal it implied — skip it.
            let skip = usize::from(p.is_some());
            for k in skip..clause.lits.len() {
                let q = clause.lits[k];
                let v = q.var().index();
                if !self.seen[v] && self.level[v] > 0 {
                    self.seen[v] = true;
                    if self.level[v] >= current_level {
                        counter += 1;
                    } else {
                        learnt.push(q);
                    }
                }
            }
            // Next literal to resolve on: the most recent seen trail entry.
            loop {
                index -= 1;
                if self.seen[self.trail[index].var().index()] {
                    break;
                }
            }
            let lit = self.trail[index];
            let v = lit.var().index();
            self.seen[v] = false;
            self.bump_var(v);
            counter -= 1;
            p = Some(lit);
            if counter == 0 {
                learnt[0] = lit.negated();
                break;
            }
            confl = self.reason[v];
            debug_assert_ne!(confl, NO_REASON, "non-UIP literal must be implied");
        }
        // Bump the variables that stay in the learnt clause, clear the marks.
        let kept: Vec<usize> = learnt[1..].iter().map(|l| l.var().index()).collect();
        for v in kept {
            self.bump_var(v);
            self.seen[v] = false;
        }
        // Backjump level: the highest level among the non-asserting literals;
        // that literal moves to the second watch position.
        let mut backjump = 0u32;
        if learnt.len() > 1 {
            let mut max_i = 1;
            for i in 2..learnt.len() {
                if self.level[learnt[i].var().index()] > self.level[learnt[max_i].var().index()] {
                    max_i = i;
                }
            }
            learnt.swap(1, max_i);
            backjump = self.level[learnt[1].var().index()];
        }
        self.var_inc /= ACTIVITY_DECAY;
        (learnt, backjump)
    }

    /// Undoes the trail down to (and keeping) `level`.
    fn cancel_until(&mut self, level: u32) {
        if self.trail_lim.len() as u32 <= level {
            return;
        }
        let keep = self.trail_lim[level as usize];
        for i in (keep..self.trail.len()).rev() {
            let l = self.trail[i];
            let v = l.var().index();
            self.polarity[v] = l.is_positive();
            self.assigns[v] = None;
            self.reason[v] = NO_REASON;
            self.order.insert(v, &self.activity);
        }
        self.trail.truncate(keep);
        self.trail_lim.truncate(level as usize);
        self.qhead = self.trail.len();
    }

    fn pick_branch_var(&mut self) -> Option<usize> {
        while let Some(v) = self.order.pop(&self.activity) {
            if self.assigns[v].is_none() {
                return Some(v);
            }
        }
        None
    }

    /// Decides satisfiability of the clause database.
    pub fn solve(&mut self) -> SolveResult {
        self.solve_with_assumptions(&[])
    }

    /// Decides satisfiability under the given assumption literals (treated as
    /// retractable first decisions — no clauses are added, and clauses
    /// learned along the way are ordinary resolvents of the database, so a
    /// later unconditioned [`solve`](Solver::solve) is unaffected by an
    /// `Unsat` verdict here).
    pub fn solve_with_assumptions(&mut self, assumptions: &[Lit]) -> SolveResult {
        debug_assert!(self.trail_lim.is_empty());
        if !self.ok {
            return SolveResult::Unsat;
        }
        for &l in assumptions {
            assert!(l.var().index() < self.num_vars(), "unknown variable");
        }
        // Seed the decision order with every unassigned variable.
        for v in 0..self.num_vars() {
            if self.assigns[v].is_none() {
                self.order.insert(v, &self.activity);
            }
        }
        if self.propagate().is_some() {
            self.ok = false;
            return SolveResult::Unsat;
        }

        let budget = self.conflict_limit;
        let mut spent = 0u64;
        let mut restarts = 0u64;
        let mut restart_budget = RESTART_BASE * luby(1);
        let mut since_restart = 0u64;
        self.interrupted = false;

        let result = loop {
            if let Some(confl) = self.propagate() {
                self.conflicts += 1;
                spent += 1;
                since_restart += 1;
                if self.trail_lim.is_empty() {
                    self.ok = false;
                    break SolveResult::Unsat;
                }
                if budget.is_some_and(|limit| spent > limit) {
                    break SolveResult::Unknown;
                }
                if self.stop_requested() {
                    self.interrupted = true;
                    break SolveResult::Unknown;
                }
                let (learnt, backjump) = self.analyze(confl);
                self.cancel_until(backjump);
                if learnt.len() == 1 {
                    self.unchecked_enqueue(learnt[0], NO_REASON);
                } else {
                    let asserted = learnt[0];
                    let cref = self.attach(learnt);
                    self.unchecked_enqueue(asserted, cref);
                }
                continue;
            }
            if since_restart >= restart_budget {
                restarts += 1;
                since_restart = 0;
                restart_budget = RESTART_BASE * luby(restarts + 1);
                self.cancel_until(0);
                // The restart boundary is the cheapest place to notice a
                // cancellation that arrives during a long conflict-free
                // stretch (the per-conflict poll covers the hot path).
                if self.stop_requested() {
                    self.interrupted = true;
                    break SolveResult::Unknown;
                }
                continue;
            }
            // Place the next assumption, if any remain unplaced.
            let mut next: Option<Lit> = None;
            let mut assumption_conflict = false;
            while (self.trail_lim.len()) < assumptions.len() {
                let p = assumptions[self.trail_lim.len()];
                match self.value_lit(p) {
                    Some(true) => {
                        // Already satisfied: open an (empty) level for it so
                        // the remaining assumptions line up with levels.
                        self.trail_lim.push(self.trail.len());
                    }
                    Some(false) => {
                        assumption_conflict = true;
                        break;
                    }
                    None => {
                        next = Some(p);
                        break;
                    }
                }
            }
            if assumption_conflict {
                break SolveResult::Unsat;
            }
            let decision = match next {
                Some(p) => p,
                None => match self.pick_branch_var() {
                    Some(v) => Lit::new(Var(v as u32), self.polarity[v]),
                    None => {
                        // Complete assignment: record the model.
                        self.model = self
                            .assigns
                            .iter()
                            .map(|a| a.expect("complete assignment"))
                            .collect();
                        break SolveResult::Sat;
                    }
                },
            };
            self.trail_lim.push(self.trail.len());
            self.unchecked_enqueue(decision, NO_REASON);
        };
        self.cancel_until(0);
        result
    }

    /// The value of `var` in the most recent satisfying assignment, `None`
    /// when no model has been recorded (or the variable postdates it).
    pub fn model_value(&self, var: Var) -> Option<bool> {
        self.model.get(var.index()).copied()
    }

    /// The most recent satisfying assignment, indexed by variable.
    pub fn model(&self) -> &[bool] {
        &self.model
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lit(solver_vars: &[Var], l: i32) -> Lit {
        let v = solver_vars[(l.unsigned_abs() as usize) - 1];
        Lit::new(v, l > 0)
    }

    fn solver_with(num_vars: usize, clauses: &[&[i32]]) -> (Solver, Vec<Var>) {
        let mut s = Solver::new();
        let vars: Vec<Var> = (0..num_vars).map(|_| s.new_var()).collect();
        for c in clauses {
            let lits: Vec<Lit> = c.iter().map(|&l| lit(&vars, l)).collect();
            s.add_clause(&lits);
        }
        (s, vars)
    }

    #[test]
    fn trivial_sat_and_unsat() {
        let (mut s, _) = solver_with(1, &[&[1]]);
        assert_eq!(s.solve(), SolveResult::Sat);
        let (mut s, _) = solver_with(1, &[&[1], &[-1]]);
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn model_satisfies_all_clauses() {
        let clauses: &[&[i32]] = &[&[1, 2], &[-1, 3], &[-2, -3], &[2, 3]];
        let (mut s, vars) = solver_with(3, clauses);
        assert_eq!(s.solve(), SolveResult::Sat);
        for c in clauses {
            assert!(
                c.iter().any(|&l| {
                    let value = s
                        .model_value(vars[(l.unsigned_abs() as usize) - 1])
                        .unwrap();
                    value == (l > 0)
                }),
                "clause {c:?} unsatisfied"
            );
        }
    }

    #[test]
    fn pigeonhole_two_pigeons_one_hole_is_unsat() {
        // p1h1, p2h1: each pigeon somewhere, no two share the hole.
        let (mut s, _) = solver_with(2, &[&[1], &[2], &[-1, -2]]);
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    /// Encodes the pigeonhole principle (`pigeons` into `holes`) — the
    /// classic resolution-hard UNSAT family when `pigeons > holes`.
    fn pigeonhole(s: &mut Solver, pigeons: usize, holes: usize) {
        let v: Vec<Vec<Var>> = (0..pigeons)
            .map(|_| (0..holes).map(|_| s.new_var()).collect())
            .collect();
        for pigeon in &v {
            let clause: Vec<Lit> = pigeon.iter().map(|&x| Lit::positive(x)).collect();
            s.add_clause(&clause);
        }
        for j in 0..holes {
            for (i1, p1) in v.iter().enumerate() {
                for p2 in &v[i1 + 1..] {
                    s.add_clause(&[Lit::negative(p1[j]), Lit::negative(p2[j])]);
                }
            }
        }
    }

    #[test]
    fn pigeonhole_three_pigeons_two_holes_is_unsat() {
        let mut s = Solver::new();
        pigeonhole(&mut s, 3, 2);
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn assumptions_flip_the_verdict_without_committing() {
        let (mut s, vars) = solver_with(2, &[&[1, 2]]);
        // Assuming both false contradicts the clause.
        assert_eq!(
            s.solve_with_assumptions(&[lit(&vars, -1), lit(&vars, -2)]),
            SolveResult::Unsat
        );
        // The unconditioned problem is still satisfiable afterwards.
        assert_eq!(s.solve(), SolveResult::Sat);
        // And a compatible assumption set is honoured in the model.
        assert_eq!(
            s.solve_with_assumptions(&[lit(&vars, -1)]),
            SolveResult::Sat
        );
        assert_eq!(s.model_value(vars[0]), Some(false));
        assert_eq!(s.model_value(vars[1]), Some(true));
    }

    #[test]
    fn conflict_limit_yields_unknown_not_a_verdict() {
        // Hard UNSAT instance (pigeonhole 5 into 4) with a conflict budget of
        // one: the solver must give up, not guess.
        let mut s = Solver::new();
        pigeonhole(&mut s, 5, 4);
        s.set_conflict_limit(Some(1));
        assert_eq!(s.solve(), SolveResult::Unknown);
        // Lifting the limit concludes the proof on the same solver.
        s.set_conflict_limit(None);
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn unit_clauses_propagate_through_add() {
        let (mut s, vars) = solver_with(3, &[&[1], &[-1, 2], &[-2, 3]]);
        assert_eq!(s.solve(), SolveResult::Sat);
        assert_eq!(s.model_value(vars[2]), Some(true));
    }

    #[test]
    fn tautologies_and_duplicates_are_harmless() {
        let (mut s, _) = solver_with(2, &[&[1, -1], &[2, 2], &[-2, -2, 1]]);
        assert_eq!(s.solve(), SolveResult::Sat);
    }

    #[test]
    fn empty_clause_poisons_the_database() {
        let mut s = Solver::new();
        let _ = s.new_var();
        assert!(!s.add_clause(&[]));
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn luby_prefix_matches_the_literature() {
        let prefix: Vec<u64> = (1..=15).map(luby).collect();
        assert_eq!(prefix, [1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8]);
    }

    #[test]
    fn xor_chain_forces_a_unique_model() {
        // x1 ⊕ x2 = 1, x2 ⊕ x3 = 1, x1 = 1 ⇒ x2 = 0, x3 = 1.
        let clauses: &[&[i32]] = &[&[1, 2], &[-1, -2], &[2, 3], &[-2, -3], &[1]];
        let (mut s, vars) = solver_with(3, clauses);
        assert_eq!(s.solve(), SolveResult::Sat);
        assert_eq!(s.model_value(vars[0]), Some(true));
        assert_eq!(s.model_value(vars[1]), Some(false));
        assert_eq!(s.model_value(vars[2]), Some(true));
    }
}
