//! Reader for the DIMACS CNF subset used by the `tests/` fixtures.
//!
//! Supported grammar:
//!
//! * `c ...` comment lines (anywhere),
//! * one `p cnf <vars> <clauses>` problem line,
//! * whitespace-separated signed integer literals with `0` terminating each
//!   clause (clauses may span lines),
//! * a trailing `%` line (the SATLIB convention) is tolerated and ends the
//!   clause section.

use crate::{Lit, Solver, Var};

/// A parsed DIMACS CNF instance.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Instance {
    /// Declared variable count from the problem line.
    pub num_vars: usize,
    /// The clauses, each a list of signed 1-based literals (no terminating 0).
    pub clauses: Vec<Vec<i64>>,
}

impl Instance {
    /// Loads this instance into a fresh [`Solver`], returning the solver and
    /// the variables in DIMACS order (`vars[i]` is DIMACS variable `i + 1`).
    pub fn load(&self) -> (Solver, Vec<Var>) {
        let mut solver = Solver::new();
        let vars: Vec<Var> = (0..self.num_vars).map(|_| solver.new_var()).collect();
        for clause in &self.clauses {
            let lits: Vec<Lit> = clause
                .iter()
                .map(|&l| Lit::new(vars[(l.unsigned_abs() as usize) - 1], l > 0))
                .collect();
            solver.add_clause(&lits);
        }
        (solver, vars)
    }
}

/// Errors a malformed DIMACS file can raise.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ParseError {
    /// No `p cnf` problem line before the first clause.
    MissingProblemLine,
    /// More than one `p` line.
    DuplicateProblemLine,
    /// The problem line is not of the form `p cnf <vars> <clauses>`.
    MalformedProblemLine(String),
    /// A token was neither a signed integer nor a recognised marker.
    BadToken(String),
    /// A literal references a variable above the declared count.
    VariableOutOfRange(i64),
    /// The file ended inside an unterminated clause.
    UnterminatedClause,
    /// The clause count does not match the problem line.
    ClauseCountMismatch {
        /// Count declared on the `p` line.
        declared: usize,
        /// Clauses actually present.
        found: usize,
    },
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::MissingProblemLine => write!(f, "missing `p cnf` problem line"),
            ParseError::DuplicateProblemLine => write!(f, "duplicate `p` problem line"),
            ParseError::MalformedProblemLine(line) => {
                write!(f, "malformed problem line: `{line}`")
            }
            ParseError::BadToken(token) => write!(f, "unexpected token `{token}`"),
            ParseError::VariableOutOfRange(l) => {
                write!(f, "literal {l} references an undeclared variable")
            }
            ParseError::UnterminatedClause => write!(f, "file ended inside a clause"),
            ParseError::ClauseCountMismatch { declared, found } => write!(
                f,
                "problem line declares {declared} clauses but the file has {found}"
            ),
        }
    }
}

impl std::error::Error for ParseError {}

/// Parses DIMACS CNF text.
pub fn parse(text: &str) -> Result<Instance, ParseError> {
    let mut num_vars: Option<usize> = None;
    let mut declared_clauses = 0usize;
    let mut clauses: Vec<Vec<i64>> = Vec::new();
    let mut current: Vec<i64> = Vec::new();
    let mut done = false;

    'lines: for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('c') {
            continue;
        }
        if done {
            break;
        }
        if let Some(rest) = line.strip_prefix('p') {
            if num_vars.is_some() {
                return Err(ParseError::DuplicateProblemLine);
            }
            let fields: Vec<&str> = rest.split_whitespace().collect();
            let parsed = match fields.as_slice() {
                ["cnf", v, c] => v.parse::<usize>().ok().zip(c.parse::<usize>().ok()),
                _ => None,
            };
            let (v, c) =
                parsed.ok_or_else(|| ParseError::MalformedProblemLine(line.to_string()))?;
            num_vars = Some(v);
            declared_clauses = c;
            continue;
        }
        let vars = num_vars.ok_or(ParseError::MissingProblemLine)?;
        for token in line.split_whitespace() {
            if token == "%" {
                // SATLIB end-of-clauses marker; everything after is ignored.
                done = true;
                continue 'lines;
            }
            let value: i64 = token
                .parse()
                .map_err(|_| ParseError::BadToken(token.to_string()))?;
            if value == 0 {
                clauses.push(std::mem::take(&mut current));
            } else {
                if value.unsigned_abs() as usize > vars {
                    return Err(ParseError::VariableOutOfRange(value));
                }
                current.push(value);
            }
        }
    }

    if !current.is_empty() {
        return Err(ParseError::UnterminatedClause);
    }
    let num_vars = num_vars.ok_or(ParseError::MissingProblemLine)?;
    if clauses.len() != declared_clauses {
        return Err(ParseError::ClauseCountMismatch {
            declared: declared_clauses,
            found: clauses.len(),
        });
    }
    Ok(Instance { num_vars, clauses })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SolveResult;

    #[test]
    fn parses_comments_multiline_clauses_and_percent() {
        let text = "c a satisfiable toy\np cnf 3 2\n1 -2\n0\n2 3 0\n%\n0\n";
        let instance = parse(text).expect("valid DIMACS");
        assert_eq!(instance.num_vars, 3);
        assert_eq!(instance.clauses, vec![vec![1, -2], vec![2, 3]]);
        let (mut solver, _) = instance.load();
        assert_eq!(solver.solve(), SolveResult::Sat);
    }

    #[test]
    fn rejects_missing_problem_line() {
        assert_eq!(parse("1 2 0\n"), Err(ParseError::MissingProblemLine));
    }

    #[test]
    fn rejects_out_of_range_variable() {
        assert_eq!(
            parse("p cnf 2 1\n3 0\n"),
            Err(ParseError::VariableOutOfRange(3))
        );
    }

    #[test]
    fn rejects_unterminated_clause() {
        assert_eq!(
            parse("p cnf 2 1\n1 2\n"),
            Err(ParseError::UnterminatedClause)
        );
    }

    #[test]
    fn rejects_clause_count_mismatch() {
        assert_eq!(
            parse("p cnf 2 2\n1 0\n"),
            Err(ParseError::ClauseCountMismatch {
                declared: 2,
                found: 1
            })
        );
    }

    #[test]
    fn rejects_garbage_tokens() {
        assert_eq!(
            parse("p cnf 1 1\nx 0\n"),
            Err(ParseError::BadToken("x".to_string()))
        );
    }
}
