//! Integration tests for the CDCL core: DIMACS fixtures, a differential
//! property family against the naive DPLL reference, and the regression
//! pinning that UNSAT under assumptions never leaks into an unconditioned
//! verdict.

use proptest::prelude::*;
use sat::reference::dpll_satisfiable;
use sat::{dimacs, Lit, SolveResult, Solver, Var};

// ---------------------------------------------------------------------------
// DIMACS fixtures
// ---------------------------------------------------------------------------

#[test]
fn chain_fixture_is_sat_and_the_model_checks_out() {
    let instance = dimacs::parse(include_str!("fixtures/chain_sat.cnf")).expect("fixture parses");
    assert_eq!(instance.num_vars, 5);
    assert_eq!(instance.clauses.len(), 5);
    let (mut solver, vars) = instance.load();
    assert_eq!(solver.solve(), SolveResult::Sat);
    // The implication chain forces the first four variables true.
    for &v in &vars[..4] {
        assert_eq!(solver.model_value(v), Some(true));
    }
    // The model satisfies every clause of the instance.
    for clause in &instance.clauses {
        assert!(clause.iter().any(|&l| {
            solver.model_value(vars[(l.unsigned_abs() as usize) - 1]) == Some(l > 0)
        }));
    }
}

#[test]
fn pigeonhole_fixture_is_unsat() {
    let instance = dimacs::parse(include_str!("fixtures/php_4_3.cnf")).expect("fixture parses");
    assert_eq!(instance.num_vars, 12);
    assert_eq!(instance.clauses.len(), 22);
    let (mut solver, _) = instance.load();
    assert_eq!(solver.solve(), SolveResult::Unsat);
    // The DPLL reference concurs.
    let clauses = dimacs_clauses(&instance);
    assert!(!dpll_satisfiable(instance.num_vars, &clauses));
}

fn dimacs_clauses(instance: &dimacs::Instance) -> Vec<Vec<Lit>> {
    instance
        .clauses
        .iter()
        .map(|clause| {
            clause
                .iter()
                .map(|&l| Lit::new(Var::from_index((l.unsigned_abs() as usize) - 1), l > 0))
                .collect()
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Differential property family: CDCL vs naive DPLL on random 3-SAT
// ---------------------------------------------------------------------------

/// Decodes a random byte soup into a 3-SAT instance over `num_vars`
/// variables. Three bytes per clause: low bits pick the variable, bit 7 the
/// polarity.
fn decode_3sat(num_vars: usize, spec: &[u8]) -> Vec<Vec<Lit>> {
    spec.chunks_exact(3)
        .map(|chunk| {
            chunk
                .iter()
                .map(|&byte| {
                    let var = Var::from_index(byte as usize % num_vars);
                    Lit::new(var, byte & 0x80 == 0)
                })
                .collect()
        })
        .collect()
}

fn cdcl_satisfiable(num_vars: usize, clauses: &[Vec<Lit>]) -> (SolveResult, Option<Vec<bool>>) {
    let mut solver = Solver::new();
    for _ in 0..num_vars {
        solver.new_var();
    }
    for clause in clauses {
        solver.add_clause(clause);
    }
    let result = solver.solve();
    let model = (result == SolveResult::Sat).then(|| solver.model().to_vec());
    (result, model)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    /// Learned-clause solving and the naive DPLL reference agree on random
    /// 3-SAT instances around the hard clause/variable ratio, and every SAT
    /// model actually satisfies the instance.
    #[test]
    fn cdcl_agrees_with_dpll_on_random_3sat(
        num_vars in 3usize..10,
        spec in prop::collection::vec(any::<u8>(), 0..126),
    ) {
        let clauses = decode_3sat(num_vars, &spec);
        let expected = dpll_satisfiable(num_vars, &clauses);
        let (result, model) = cdcl_satisfiable(num_vars, &clauses);
        prop_assert_eq!(result, if expected { SolveResult::Sat } else { SolveResult::Unsat });
        if let Some(model) = model {
            for clause in &clauses {
                prop_assert!(
                    clause.iter().any(|&l| model[l.var().index()] == l.is_positive()),
                    "model violates clause {:?}", clause
                );
            }
        }
    }

    /// Solving under assumptions equals solving the instance with the
    /// assumptions added as unit clauses — and afterwards the *same* solver
    /// still reproduces the unconditioned verdict (no state leak either way).
    #[test]
    fn assumption_solving_matches_unit_strengthening(
        num_vars in 3usize..8,
        spec in prop::collection::vec(any::<u8>(), 0..90),
        assumption_spec in prop::collection::vec(any::<u8>(), 1..4),
    ) {
        let clauses = decode_3sat(num_vars, &spec);
        // Distinct-variable assumptions (re-assuming a variable both ways is
        // legal but trivially Unsat, which the strengthened reference also
        // reports; dedup keeps the comparison interesting).
        let mut assumptions: Vec<Lit> = Vec::new();
        for &byte in &assumption_spec {
            let lit = Lit::new(Var::from_index(byte as usize % num_vars), byte & 0x80 == 0);
            if !assumptions.iter().any(|a| a.var() == lit.var()) {
                assumptions.push(lit);
            }
        }

        let mut strengthened = clauses.clone();
        strengthened.extend(assumptions.iter().map(|&l| vec![l]));
        let expected_assumed = dpll_satisfiable(num_vars, &strengthened);
        let expected_free = dpll_satisfiable(num_vars, &clauses);

        let mut solver = Solver::new();
        for _ in 0..num_vars {
            solver.new_var();
        }
        for clause in &clauses {
            solver.add_clause(clause);
        }
        let assumed = solver.solve_with_assumptions(&assumptions);
        prop_assert_eq!(
            assumed,
            if expected_assumed { SolveResult::Sat } else { SolveResult::Unsat }
        );
        if assumed == SolveResult::Sat {
            for &l in &assumptions {
                prop_assert_eq!(solver.model_value(l.var()), Some(l.is_positive()));
            }
        }
        // The same solver, unconditioned, must match the free verdict: the
        // clauses learned under assumptions are ordinary resolvents.
        let free = solver.solve();
        prop_assert_eq!(
            free,
            if expected_free { SolveResult::Sat } else { SolveResult::Unsat }
        );
    }
}

// ---------------------------------------------------------------------------
// Regression: assumption UNSAT must never leak
// ---------------------------------------------------------------------------

/// Encodes the pigeonhole principle (`pigeons` into `holes`), every clause
/// prefixed with `gate` (pass an empty slice for the plain instance). Returns
/// the placement variables.
fn gated_pigeonhole(
    solver: &mut Solver,
    pigeons: usize,
    holes: usize,
    gate: &[Lit],
) -> Vec<Vec<Var>> {
    let v: Vec<Vec<Var>> = (0..pigeons)
        .map(|_| (0..holes).map(|_| solver.new_var()).collect())
        .collect();
    for pigeon in &v {
        let mut clause = gate.to_vec();
        clause.extend(pigeon.iter().map(|&x| Lit::positive(x)));
        solver.add_clause(&clause);
    }
    for j in 0..holes {
        for (i1, p1) in v.iter().enumerate() {
            for p2 in &v[i1 + 1..] {
                let mut clause = gate.to_vec();
                clause.push(Lit::negative(p1[j]));
                clause.push(Lit::negative(p2[j]));
                solver.add_clause(&clause);
            }
        }
    }
    v
}

/// A selector-gated pigeonhole instance: assuming the selector turns the
/// solver loose on an unsatisfiable core and forces heavy clause learning;
/// the unconditioned instance stays satisfiable (selector false). The learnt
/// clauses must not flip any later unconditioned verdict.
#[test]
fn unsat_under_assumptions_never_leaks_into_unconditioned_solves() {
    let mut solver = Solver::new();
    let selector = solver.new_var();
    let holes = gated_pigeonhole(&mut solver, 5, 4, &[Lit::negative(selector)]);

    // Interleave assumed-UNSAT solves (which learn aggressively) with
    // unconditioned solves; the latter must stay Sat every round.
    for round in 0..3 {
        assert_eq!(
            solver.solve_with_assumptions(&[Lit::positive(selector)]),
            SolveResult::Unsat,
            "round {round}: gated pigeonhole must be Unsat under the selector"
        );
        assert_eq!(
            solver.solve(),
            SolveResult::Sat,
            "round {round}: assumption UNSAT leaked into the unconditioned verdict"
        );
        assert_eq!(solver.model_value(selector), Some(false));
    }
    // A conflicting assumption pair is also quarantined.
    let p = Lit::positive(holes[0][0]);
    assert_eq!(
        solver.solve_with_assumptions(&[p, p.negated()]),
        SolveResult::Unsat
    );
    assert_eq!(solver.solve(), SolveResult::Sat);
}

/// Conflict-limit exhaustion must report `Unknown` — and leave the solver
/// able to finish the proof once the limit is lifted.
#[test]
fn conflict_limited_unknown_is_not_a_verdict_and_is_recoverable() {
    let mut solver = Solver::new();
    gated_pigeonhole(&mut solver, 6, 5, &[]);
    solver.set_conflict_limit(Some(2));
    assert_eq!(solver.solve(), SolveResult::Unknown);
    solver.set_conflict_limit(None);
    assert_eq!(solver.solve(), SolveResult::Unsat);
}
