//! Guards the README's advertised entry point: `cargo run --example
//! quickstart` must keep exiting successfully, so the quickstart cannot
//! silently rot while the rest of the test suite stays green.

use std::process::Command;

#[test]
fn quickstart_example_exits_zero() {
    let status = Command::new(env!("CARGO"))
        .args(["run", "--offline", "--example", "quickstart"])
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .status()
        .expect("failed to spawn cargo");
    assert!(status.success(), "quickstart example exited with {status}");
}
