//! End-to-end coverage of the decoupled pipeline: load committed circuits
//! through every frontend and run the generic screen+proof flow — the same
//! path the `untestable` CLI drives.

use untestable_repro::prelude::*;

fn circuit(name: &str) -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("circuits")
        .join(name)
}

#[test]
fn synth_c432_screen_plus_proof_matches_the_cli_run() {
    let netlist = load_netlist(circuit("synth_c432.bench"), None).unwrap();
    let spec =
        ConstraintSpec::parse(&std::fs::read_to_string(circuit("synth_c432.mission")).unwrap())
            .unwrap();
    let design = NetlistDesign::with_constraints(netlist, &spec).unwrap();
    let report = IdentificationFlow::new(FlowConfig::full_pipeline())
        .run(&design)
        .unwrap();
    // The pipeline degrades to screen + proof for a pure netlist.
    let names: Vec<&str> = report.phases.iter().map(|p| p.name.as_str()).collect();
    assert_eq!(
        names,
        ["baseline", "debug-control", "debug-observe", "atpg-proof"],
        "{report}"
    );
    // Exact deterministic results on the committed circuit + spec (the
    // proof engine is thread-invariant); these are the numbers the CLI
    // walkthrough in EXPERIMENTS.md advertises.
    assert_eq!(report.total_faults, 1136, "{report}");
    assert_eq!(report.total_untestable(), 184, "{report}");
    assert_eq!(
        report.count_for(faultmodel::UntestableSource::AtpgProof),
        27,
        "{report}"
    );
    assert_eq!(
        report.count_for(faultmodel::UntestableSource::DebugControl),
        60,
        "{report}"
    );
    assert_eq!(
        report.count_for(faultmodel::UntestableSource::DebugObservation),
        97,
        "{report}"
    );
    assert_eq!(
        report.total_faults,
        report.counts.total(),
        "report consistent"
    );
}

#[test]
fn every_frontend_feeds_the_same_pipeline() {
    for file in ["c17.bench", "s27.bench", "half_adder.edif"] {
        let netlist = load_netlist(circuit(file), None).unwrap();
        let design = NetlistDesign::new(netlist);
        let report = IdentificationFlow::new(FlowConfig::full_pipeline())
            .run(&design)
            .unwrap();
        // Unconstrained circuits: baseline + proof only, and these classic
        // circuits are fully testable.
        let names: Vec<&str> = report.phases.iter().map(|p| p.name.as_str()).collect();
        assert_eq!(names, ["baseline", "atpg-proof"], "{file}: {report}");
        assert_eq!(report.total_untestable(), 0, "{file}: {report}");
    }
}

#[test]
fn soc_netlist_roundtrips_through_the_verilog_frontend() {
    // The SoC's own netlist survives a write→parse round-trip through the
    // frontend entry point, preserving its fault universe size.
    use netlist::verilog::write_verilog;
    use netlist::{frontend::parse_netlist, stats::stats};
    let soc = SocBuilder::small().build();
    let text = write_verilog(&soc.netlist);
    let parsed = parse_netlist(&text, Format::Verilog).unwrap();
    let s1 = stats(&soc.netlist);
    let s2 = stats(&parsed);
    assert_eq!(s1.stuck_at_faults(), s2.stuck_at_faults());
    assert_eq!(s1.scan_flip_flops, s2.scan_flip_flops);
    assert_eq!(s1.primary_inputs, s2.primary_inputs);
}
