//! Cross-crate integration tests: netlist I/O on the generated SoC, physical
//! vs constraint-based circuit manipulation, and end-to-end flow consistency.

use netlist::stats::stats;
use netlist::verilog::{parse_verilog, write_verilog};
use online_untestable::flow::{FlowConfig, IdentificationFlow};
use online_untestable::rules::{analyse_manipulation, debug_control_manipulation};
use untestable_repro::prelude::*;

#[test]
fn soc_netlist_round_trips_through_verilog() {
    let soc = SocBuilder::small().build();
    let text = write_verilog(&soc.netlist);
    assert!(text.contains("module soc_mini32"));
    let parsed = parse_verilog(&text).expect("parse the emitted netlist");
    let original = stats(&soc.netlist);
    let reparsed = stats(&parsed);
    assert_eq!(original.combinational_cells, reparsed.combinational_cells);
    assert_eq!(original.scan_flip_flops, reparsed.scan_flip_flops);
    assert_eq!(original.primary_inputs, reparsed.primary_inputs);
    assert_eq!(original.primary_outputs, reparsed.primary_outputs);
    assert_eq!(original.pins, reparsed.pins);
}

#[test]
fn physical_manipulation_matches_constraint_analysis() {
    let soc = SocBuilder::small().build();
    let tied: Vec<(netlist::NetId, bool)> = soc.mission_tied_inputs();
    let manipulation = debug_control_manipulation(&tied);

    // Constraint-based analysis on the original design.
    let (_, untestable_constraints) =
        analyse_manipulation(&soc.netlist, &manipulation, false).expect("analysis");

    // Physically edited design, analysed without extra constraints.
    let modified = manipulation.apply(&soc.netlist);
    let mut faults = FaultList::full_universe(&modified);
    let outcome = StructuralAnalysis::new(AnalysisConfig::default())
        .run(&modified, &mut faults)
        .expect("analysis");

    // The physical edit inserts tie-buffer cells (extra faults) and detaches
    // the original input drivers, so the counts are not identical — but the
    // identified untestable populations must be of the same order and the
    // physical one can only be larger or equal up to the inserted cells.
    let physical = outcome.total_untestable();
    assert!(physical > 0);
    assert!(untestable_constraints > 0);
    let ratio = physical as f64 / untestable_constraints as f64;
    assert!(
        (0.8..=1.5).contains(&ratio),
        "physical {physical} vs constraints {untestable_constraints}"
    );
}

#[test]
fn flow_report_is_internally_consistent() {
    let soc = SocBuilder::small().build();
    let (report, faults) = IdentificationFlow::new(FlowConfig::default())
        .run_with_faults(&soc)
        .expect("flow");
    // The report's counts equal the fault list's counts.
    assert_eq!(report.counts, faults.counts());
    // Every on-line untestable fault in the list is attributed to exactly one
    // source and the totals match.
    assert_eq!(
        report.total_untestable(),
        faults
            .iter()
            .filter(|(_, c)| matches!(c, FaultClass::OnlineUntestable(_)))
            .count()
    );
    // The summary percentages add up to the total row.
    let summary = report.summary();
    let sum: usize = summary.rows[..3].iter().map(|r| r.count).sum();
    assert_eq!(sum, summary.total_row().count);
    // Phase durations are recorded for every enabled phase.
    assert_eq!(report.phases.len(), 5);
    assert!(report.total_duration().as_nanos() > 0);
}

#[test]
fn pruning_never_decreases_the_coverage_figure() {
    let soc = SocBuilder::small().build();
    let report = IdentificationFlow::new(FlowConfig::default())
        .run(&soc)
        .expect("flow");
    for detected in [0usize, 100, 10_000, report.total_faults / 2] {
        let before = report.coverage_before_pruning(detected);
        let after = report.coverage_after_pruning(detected);
        assert!(after >= before, "detected={detected}");
    }
}

#[test]
fn staged_pipeline_proof_verdicts_survive_a_longer_sbst_campaign() {
    use cpu::sbst::{grade_suite, standard_suite, suite_stimuli};
    use online_untestable::flow::ProofStageConfig;

    // A reduced SoC keeps the full pipeline (SBST simulation + PODEM proofs)
    // affordable in the test build.
    let soc = SocBuilder::small()
        .core_config(cpu::core_gen::CoreConfig {
            num_regs: 4,
            btb_entries: 2,
            include_cycle_counter: false,
        })
        .build();
    let config = FlowConfig {
        sbst_max_cycles: 200,
        proof: ProofStageConfig {
            backtrack_limit: 8,
            threads: 0,
            max_faults: Some(1_500),
            ..ProofStageConfig::default()
        },
        ..FlowConfig::full_pipeline()
    };
    let (report, faults) = IdentificationFlow::new(config)
        .run_with_faults(&soc)
        .expect("flow");
    let proven: Vec<StuckAt> = faults
        .iter()
        .filter(|&(_, c)| {
            c == FaultClass::OnlineUntestable(faultmodel::UntestableSource::AtpgProof)
        })
        .map(|(f, _)| f)
        .collect();
    assert!(!proven.is_empty(), "{report}");

    // Soundness across stages: the proof stage only saw a 200-cycle SBST
    // budget; its untestability verdicts must hold against a far longer run
    // of the same suite observed at the system bus.
    let sim = atpg::FaultSim::new(&soc.netlist).expect("fault sim");
    let stimuli = suite_stimuli(&standard_suite(), &soc.interface, 1_500);
    let detected = grade_suite(&sim, &stimuli, &proven, &soc.interface.bus_output_ports);
    let escapes: Vec<&StuckAt> = proven
        .iter()
        .zip(&detected)
        .filter(|&(_, &d)| d)
        .map(|(f, _)| f)
        .collect();
    assert!(
        escapes.is_empty(),
        "faults proven untestable were detected on the bus: {escapes:?}"
    );
}

#[test]
fn disabled_scan_insertion_removes_the_scan_source() {
    use cpu::soc::SocConfig;
    use dft::scan::ScanConfig;
    // Build an SoC whose scan insertion produces a single chain without path
    // buffers; the scan source shrinks accordingly but never disappears
    // (SI/SE pins remain).
    let mut config = SocConfig {
        core: cpu::core_gen::CoreConfig::small(),
        scan: ScanConfig {
            num_chains: 1,
            insert_path_buffers: false,
            ..ScanConfig::default()
        },
        ..SocConfig::default()
    };
    config.bist = None;
    let soc = cpu::soc::SocBuilder::new(config).build();
    let report = IdentificationFlow::new(FlowConfig::default())
        .run(&soc)
        .expect("flow");
    let with_buffers = SocBuilder::small().build();
    let report_with_buffers = IdentificationFlow::new(FlowConfig::default())
        .run(&with_buffers)
        .expect("flow");
    let scan_a = report.count_for(faultmodel::UntestableSource::Scan);
    let scan_b = report_with_buffers.count_for(faultmodel::UntestableSource::Scan);
    assert!(scan_a > 0);
    assert!(
        scan_b > scan_a,
        "scan-path buffers must add to the scan-untestable population ({scan_b} vs {scan_a})"
    );
}
