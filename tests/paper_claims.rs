//! End-to-end checks of the paper's headline claims on the generated SoC
//! (shape, not absolute numbers — see EXPERIMENTS.md).

use faultmodel::UntestableSource;
use online_untestable::flow::{FlowConfig, IdentificationFlow};
use untestable_repro::prelude::*;

fn run_small() -> (
    cpu::soc::Soc,
    online_untestable::report::IdentificationReport,
) {
    let soc = SocBuilder::small().build();
    let report = IdentificationFlow::new(FlowConfig::default())
        .run(&soc)
        .expect("flow");
    (soc, report)
}

#[test]
fn every_untestability_source_of_section_3_is_present() {
    let (_, report) = run_small();
    // §3 defines four sources; the ATPG proof bucket is this reproduction's
    // extension and only fills when the proof stage is enabled.
    for source in [
        UntestableSource::Scan,
        UntestableSource::DebugControl,
        UntestableSource::DebugObservation,
        UntestableSource::MemoryMap,
    ] {
        assert!(
            report.count_for(source) > 0,
            "source {source} found no faults:\n{report}"
        );
    }
    assert_eq!(report.count_for(UntestableSource::AtpgProof), 0);
}

#[test]
fn scan_is_the_dominant_source_as_in_table_1() {
    let (_, report) = run_small();
    let scan = report.count_for(UntestableSource::Scan);
    for source in [
        UntestableSource::DebugControl,
        UntestableSource::DebugObservation,
        UntestableSource::MemoryMap,
    ] {
        assert!(
            scan > report.count_for(source),
            "scan ({scan}) should dominate {source} ({})",
            report.count_for(source)
        );
    }
}

#[test]
fn total_loss_is_in_the_tens_of_percent_band() {
    let (_, report) = run_small();
    let fraction = report.untestable_fraction();
    // The paper reports 13.8 %; the reproduction's reduced SoC lands in the
    // same band (a few percent up to ~25 % depending on configuration).
    assert!(
        (0.05..=0.30).contains(&fraction),
        "untestable fraction {fraction:.3} out of the expected band\n{report}"
    );
}

#[test]
fn debug_control_exceeds_debug_observation() {
    // In the paper 4,548 control faults vs 2,357 observation faults.
    let (_, report) = run_small();
    assert!(
        report.count_for(UntestableSource::DebugControl)
            >= report.count_for(UntestableSource::DebugObservation),
        "{report}"
    );
}

#[test]
fn identification_is_fast_compared_to_fault_simulation() {
    // §4: the structural analysis of the manipulated circuit takes < 1 s of
    // CPU time. Our reduced SoC must finish the *entire* flow within seconds
    // even in an unoptimised test build.
    let (_, report) = run_small();
    assert!(
        report.total_duration().as_secs_f64() < 30.0,
        "flow took {:?}",
        report.total_duration()
    );
}

#[test]
fn identified_faults_are_never_detected_by_the_sbst_suite() {
    // Soundness spot-check: grade a sample of the faults claimed untestable
    // against the SBST suite observed at the system bus; none may be
    // detected.
    use atpg::FaultSim;
    use cpu::sbst::{standard_suite, suite_stimuli};
    use faultmodel::FaultClass;
    use rand::seq::SliceRandom;
    use rand::SeedableRng;

    let soc = SocBuilder::small().build();
    let (_, classified) = IdentificationFlow::new(FlowConfig::default())
        .run_with_faults(&soc)
        .expect("flow");
    let mut untestable: Vec<StuckAt> = classified
        .iter()
        .filter(|(_, c)| matches!(c, FaultClass::OnlineUntestable(_)))
        .map(|(f, _)| f)
        .collect();
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    untestable.shuffle(&mut rng);
    let sample: Vec<StuckAt> = untestable.into_iter().take(200).collect();

    let suite = standard_suite();
    let stimuli = suite_stimuli(&suite, &soc.interface, 1_500);
    let sim = FaultSim::new(&soc.netlist).expect("fault sim");
    // Observe the system bus only, as an on-line functional test would.
    let bus = &soc.interface.bus_output_ports;
    let detected = cpu::sbst::grade_suite(&sim, &stimuli, &sample, bus);
    let escapes: Vec<&StuckAt> = sample
        .iter()
        .zip(&detected)
        .filter(|&(_, &d)| d)
        .map(|(f, _)| f)
        .collect();
    assert!(
        escapes.is_empty(),
        "faults claimed untestable were detected on the bus: {escapes:?}"
    );
}
