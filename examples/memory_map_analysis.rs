//! Memory-map sensitivity study (§3.3): how the number of on-line
//! functionally untestable faults attributed to the memory map changes with
//! the amount of address space actually mapped.
//!
//! Run with `cargo run --release --example memory_map_analysis`.

use cpu::mem::{MemRegion, MemoryMap, RegionKind};
use faultmodel::UntestableSource;
use untestable_repro::prelude::*;

fn scenario(name: &str, map: MemoryMap) -> (String, usize, usize, f64) {
    let soc = SocBuilder::small().memory_map(map.clone()).build();
    let config = FlowConfig {
        run_scan: false,
        run_debug_control: false,
        run_debug_observation: false,
        ..FlowConfig::default()
    };
    let report = IdentificationFlow::new(config).run(&soc).expect("flow");
    let frozen_bits = map.constant_address_bits().len();
    (
        name.to_string(),
        frozen_bits,
        report.count_for(UntestableSource::MemoryMap),
        100.0 * report.count_for(UntestableSource::MemoryMap) as f64 / report.total_faults as f64,
    )
}

fn main() {
    let scenarios = vec![
        scenario(
            "paper example (4K flash + 1K RAM at 0)",
            MemoryMap::date13_example(),
        ),
        scenario(
            "paper case study (32K flash + 128K RAM)",
            MemoryMap::date13_case_study(),
        ),
        scenario(
            "large map (16M flash + 16M RAM)",
            MemoryMap::new(vec![
                MemRegion::new(0x0000_0000, 0x0100_0000, RegionKind::Flash),
                MemRegion::new(0x4000_0000, 0x0100_0000, RegionKind::Ram),
            ]),
        ),
        scenario(
            "full 4 GiB map (no frozen bits)",
            MemoryMap::new(vec![MemRegion::new(0, u32::MAX, RegionKind::Ram)]),
        ),
    ];

    println!(
        "{:<42} {:>12} {:>12} {:>8}",
        "scenario", "frozen bits", "faults", "[%]"
    );
    for (name, frozen, faults, pct) in &scenarios {
        println!("{name:<42} {frozen:>12} {faults:>12} {pct:>7.2}%");
    }
    println!();
    println!(
        "The fewer address bits the mission memory map exercises, the more of\n\
         the address-manipulation logic (PC, branch adder, branch target buffer)\n\
         becomes on-line functionally untestable — the effect §3.3 describes."
    );
}
