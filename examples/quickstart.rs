//! Quickstart: identify on-line functionally untestable faults, first on a
//! hand-built toy circuit and then on a generated SoC.
//!
//! Run with `cargo run --release --example quickstart`.

use untestable_repro::prelude::*;

fn toy_circuit() {
    println!("== toy circuit ==");
    // A two-gate circuit in which one input is a debug enable that is tied to
    // ground in mission mode.
    let mut b = NetlistBuilder::new("toy");
    let data = b.input("data");
    let debug_enable = b.input("debug_enable");
    let forced = b.input("debug_force_value");
    let muxed = b.mux2(data, forced, debug_enable);
    let y = b.not(muxed);
    b.output("y", y);
    let design = b.finish();

    // Express the mission configuration as analysis constraints and let the
    // structural engine classify the fault universe.
    let mut constraints = atpg::ConstraintSet::full_scan();
    constraints.tie_net(debug_enable, false);
    let mut faults = FaultList::full_universe(&design);
    let outcome = StructuralAnalysis::with_constraints(constraints)
        .run(&design, &mut faults)
        .expect("analysis");

    println!("fault universe : {}", faults.len());
    println!("untestable     : {}", outcome.total_untestable());
    for (fault, class) in faults.iter() {
        if class.is_untestable() {
            println!("  {:<28} {}", fault.describe(&design), class);
        }
    }
    println!();
}

fn generated_soc() {
    println!("== generated SoC (reduced configuration) ==");
    let soc = SocBuilder::small().build();
    let stats = netlist::stats::stats(&soc.netlist);
    println!(
        "design `{}`: {} cells, {} scan flip-flops, {} stuck-at faults",
        soc.netlist.name(),
        stats.total_cells,
        stats.scan_flip_flops,
        stats.stuck_at_faults()
    );

    let report = IdentificationFlow::new(FlowConfig::default())
        .run(&soc)
        .expect("identification flow");
    println!("{report}");
}

fn main() {
    toy_circuit();
    generated_soc();
}
