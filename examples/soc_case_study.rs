//! The industrial case study of §4 (Table I): build the full-size SoC — 32
//! registers, 4-entry BTB, full scan in four chains, Nexus-style debug unit,
//! JTAG access port, BIST block, the paper's flash+RAM memory map — and run
//! the complete identification flow.
//!
//! Run with `cargo run --release --example soc_case_study`.

use faultmodel::UntestableSource;
use untestable_repro::prelude::*;

fn main() {
    let soc = SocBuilder::industrial().build();
    let stats = netlist::stats::stats(&soc.netlist);
    println!("design          : {}", soc.netlist.name());
    println!("cells           : {}", stats.total_cells);
    println!("scan flip-flops : {}", stats.scan_flip_flops);
    println!("fault universe  : {}", stats.stuck_at_faults());
    println!("memory map      :\n{}", soc.memory_map);
    println!();

    let flow = IdentificationFlow::new(FlowConfig::default());
    let started = std::time::Instant::now();
    let report = flow.run(&soc).expect("identification flow");
    let elapsed = started.elapsed();

    println!("{report}");
    println!();
    println!(
        "wall-clock for the whole flow: {:.3} s",
        elapsed.as_secs_f64()
    );
    println!();
    println!("Paper Table I (for comparison, 214,930-fault industrial design):");
    println!("  Scan    19,142  ( 8.9%)");
    println!("  Debug    6,905  ( 3.2%)");
    println!("  Memory   3,610  ( 1.7%)");
    println!("  TOTAL   29,657  (13.8%)");
    println!();
    println!("This reproduction:");
    for source in UntestableSource::ALL {
        println!(
            "  {:<18} {:>8}  ({:>5.1}%)",
            source.name(),
            report.count_for(source),
            100.0 * report.count_for(source) as f64 / report.total_faults as f64
        );
    }
    println!(
        "  {:<18} {:>8}  ({:>5.1}%)",
        "TOTAL",
        report.total_untestable(),
        100.0 * report.untestable_fraction()
    );
}
