//! The pay-off of the paper (§4): pruning on-line functionally untestable
//! faults raises the fault-coverage figure reported for an SBST suite.
//!
//! This example runs the *full staged pipeline* on the industrial SoC:
//!
//! 1. baseline structural analysis plus the four §3 screening rules,
//! 2. compiled-engine fault simulation of the whole surviving universe
//!    against the four-program SBST suite, observing only the system bus,
//! 3. the constraint-aware PODEM/SAT proof portfolio over **every** fault
//!    that survives both — cone-clipped, SCOAP-guided and
//!    collapse-scheduled, with PODEM aborts escalated to the SAT backend —
//!    re-labelling everything it proves as `OU(atpg-proof)`.
//!
//! The coverage figures are then exact (every fault graded, no sampling):
//! detected / universe before pruning, detected / (universe − untestable)
//! after.
//!
//! # Invocations
//!
//! ```console
//! $ cargo run --release --example sbst_coverage              # full industrial run
//! $ cargo run --release --example sbst_coverage -- --quick   # reduced SoC, for iterating
//! $ cargo run --release --example sbst_coverage -- --threads 4
//! $ cargo run --release --example sbst_coverage -- --max-proof 2000 --seed 2013
//! $ cargo run --release --example sbst_coverage -- --no-sat
//! ```
//!
//! * `--quick` runs the reduced SoC instead of the industrial one, cutting
//!   the multi-minute run down to seconds;
//! * `--threads N` pins the proof-stage fan-out (default: the machine's
//!   available parallelism; classifications are thread-invariant);
//! * `--max-proof N` caps the proof worklist at `N` survivors (default:
//!   unlimited — the whole survivor set is proven);
//! * `--seed S` draws the capped worklist as a seeded random sample of the
//!   survivors instead of a universe-order prefix (only meaningful together
//!   with `--max-proof`);
//! * `--no-sat` turns the SAT escalation off (PODEM only) — the portfolio's
//!   conflict-limited tail dominates the proof stage's wall-clock, so this
//!   is the biggest lever when iterating on the industrial SoC.

use faultmodel::UntestableSource;
use online_untestable::flow::ProofStageConfig;
use untestable_repro::prelude::*;

/// Parsed command line; see the example header for the meaning of each flag.
struct Options {
    quick: bool,
    threads: usize,
    max_proof: Option<usize>,
    seed: Option<u64>,
    sat: bool,
}

fn parse_options() -> Options {
    let mut options = Options {
        quick: false,
        threads: 0,
        max_proof: None,
        seed: None,
        sat: true,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{flag} needs a value"))
        };
        match arg.as_str() {
            "--quick" => options.quick = true,
            "--threads" => {
                options.threads = value("--threads").parse().expect("--threads: integer")
            }
            "--max-proof" => {
                options.max_proof =
                    Some(value("--max-proof").parse().expect("--max-proof: integer"))
            }
            "--seed" => options.seed = Some(value("--seed").parse().expect("--seed: integer")),
            "--no-sat" => options.sat = false,
            other => panic!(
                "unknown argument `{other}` (expected --quick, --threads N, --max-proof N, \
                 --seed S, --no-sat)"
            ),
        }
    }
    options
}

fn main() {
    let options = parse_options();
    let soc = if options.quick {
        SocBuilder::small().build()
    } else {
        SocBuilder::industrial().build()
    };
    println!("design          : {}", soc.netlist.name());
    println!("nets            : {}", soc.netlist.num_nets());

    // The full pipeline. By default the proof stage attacks the *entire*
    // surviving undetected population: cone clipping, SCOAP guidance and
    // collapse scheduling keep the per-fault cost low enough that no budget
    // cap is needed.
    let config = FlowConfig {
        proof: ProofStageConfig {
            backtrack_limit: 16,
            threads: options.threads,
            max_faults: options.max_proof,
            sample_seed: options.seed,
            use_sat: options.sat,
            ..ProofStageConfig::default()
        },
        ..FlowConfig::full_pipeline()
    };
    let flow = IdentificationFlow::new(config);
    let (report, classified) = flow.run_with_faults(&soc).expect("identification flow");
    // The report's Display includes the per-stage walkthrough of the §4
    // procedure (classified / still-undetected / wall-clock per stage).
    println!("{report}");
    println!();

    let detected = report.counts.detected;
    let untestable = report.baseline_structural + report.total_untestable();
    let raw = report.coverage_before_pruning(detected);
    let pruned = report.coverage_after_pruning(detected);

    println!("fault universe              : {}", report.total_faults);
    println!("detected by the SBST suite  : {detected}");
    println!("untestable (all classes)    : {untestable}");
    println!(
        "proven by ATPG (atpg-proof) : {}",
        report.count_for(UntestableSource::AtpgProof)
    );
    if let Some(breakdown) = &report.engine_breakdown {
        println!("proof-engine breakdown      : {breakdown}");
    }
    println!("coverage before pruning     : {:.1}%", raw * 100.0);
    println!("coverage after pruning      : {:.1}%", pruned * 100.0);
    println!(
        "coverage gain from pruning  : {:+.1} percentage points",
        (pruned - raw) * 100.0
    );
    println!();
    println!(
        "The paper reports a ~13 percentage-point rise on its industrial SoC\n\
         once the 29,657 on-line functionally untestable faults are removed\n\
         from the fault list. The atpg-proof bucket is this reproduction's\n\
         extension: faults no structural rule can attribute, *proven*\n\
         untestable by the PODEM/SAT portfolio under the mission\n\
         constraints — over the full survivor set, not a budgeted slice."
    );
    assert!(
        report.count_for(UntestableSource::AtpgProof) > 0,
        "the proof stage should prove at least one fault"
    );

    // Cross-check the report against the classified list.
    assert_eq!(classified.counts(), report.counts);
}
