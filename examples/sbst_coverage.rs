//! The pay-off of the paper (§4): pruning on-line functionally untestable
//! faults raises the fault-coverage figure reported for an SBST suite.
//!
//! The example grades the standard SBST suite on a reduced SoC against a
//! random sample of the fault universe (fault sampling keeps the run short;
//! the sampled coverage is an unbiased estimate of the full figure), then
//! reports the coverage before and after pruning.
//!
//! Run with `cargo run --release --example sbst_coverage`.

use atpg::FaultSim;
use cpu::sbst::{standard_suite, suite_stimuli};
use faultmodel::{FaultClass, StuckAt};
use rand::seq::SliceRandom;
use rand::SeedableRng;
use untestable_repro::prelude::*;

const SAMPLE_SIZE: usize = 1_500;

fn main() {
    let soc = SocBuilder::small().build();

    // Step 1: identify the on-line functionally untestable faults.
    let (report, classified) = IdentificationFlow::new(FlowConfig::default())
        .run_with_faults(&soc)
        .expect("identification flow");
    println!("{report}");
    println!();

    // Step 2: sample the fault universe and grade the SBST suite against it.
    let mut rng = rand::rngs::StdRng::seed_from_u64(2013);
    let mut all_faults: Vec<StuckAt> = classified.faults().to_vec();
    all_faults.shuffle(&mut rng);
    let sample: Vec<StuckAt> = all_faults.into_iter().take(SAMPLE_SIZE).collect();

    let suite = standard_suite();
    let stimuli = suite_stimuli(&suite, &soc.interface, 2_000);
    let sim = FaultSim::new(&soc.netlist).expect("fault simulator");
    // Only the system bus is observable during the on-line test (§4).
    let bus = &soc.interface.bus_output_ports;
    let mut detected = vec![false; sample.len()];
    for (program, stim) in suite.iter().zip(&stimuli) {
        // Only the still-undetected faults are simulated against the next
        // program, exactly as `cpu::sbst::grade_suite` does internally.
        let (indices, targets): (Vec<usize>, Vec<StuckAt>) = sample
            .iter()
            .enumerate()
            .filter(|&(i, _)| !detected[i])
            .map(|(i, &f)| (i, f))
            .unzip();
        let hits = sim.detect_at(&targets, &stim.vectors, bus);
        for (i, hit) in indices.into_iter().zip(hits) {
            detected[i] |= hit;
        }
        println!(
            "program {:<8} {:>5} cycles, cumulative detected {:>5}/{}",
            program.name,
            stim.vectors.len(),
            detected.iter().filter(|&&d| d).count(),
            sample.len()
        );
    }

    // Step 3: compute the coverage figures.
    let detected_count = detected.iter().filter(|&&d| d).count();
    let untestable_in_sample = sample
        .iter()
        .filter(|&&f| {
            classified
                .class_of(f)
                .map(FaultClass::is_untestable)
                .unwrap_or(false)
        })
        .count();
    let raw = detected_count as f64 / sample.len() as f64;
    let pruned = detected_count as f64 / (sample.len() - untestable_in_sample) as f64;

    println!();
    println!("sampled faults              : {}", sample.len());
    println!("detected by the SBST suite  : {detected_count}");
    println!("untestable in the sample    : {untestable_in_sample}");
    println!("coverage before pruning     : {:.1}%", raw * 100.0);
    println!("coverage after pruning      : {:.1}%", pruned * 100.0);
    println!(
        "coverage gain from pruning  : {:+.1} percentage points",
        (pruned - raw) * 100.0
    );
    println!();
    println!(
        "The paper reports a ~13 percentage-point rise on its industrial SoC\n\
         once the 29,657 on-line functionally untestable faults are removed\n\
         from the fault list."
    );
}
