//! The pay-off of the paper (§4): pruning on-line functionally untestable
//! faults raises the fault-coverage figure reported for an SBST suite.
//!
//! This example runs the *full staged pipeline* on the industrial SoC:
//!
//! 1. baseline structural analysis plus the four §3 screening rules,
//! 2. compiled-engine fault simulation of the whole surviving universe
//!    against the four-program SBST suite, observing only the system bus,
//! 3. the constraint-aware PODEM proof stage over a budgeted slice of the
//!    faults that survive both — re-labelling everything it proves as
//!    `OU(atpg-proof)`.
//!
//! The coverage figures are then exact (every fault graded, no sampling):
//! detected / universe before pruning, detected / (universe − untestable)
//! after.
//!
//! Run with `cargo run --release --example sbst_coverage`.

use faultmodel::UntestableSource;
use online_untestable::flow::ProofStageConfig;
use untestable_repro::prelude::*;

fn main() {
    let soc = SocBuilder::industrial().build();
    println!("design          : {}", soc.netlist.name());
    println!("nets            : {}", soc.netlist.num_nets());

    // The full pipeline with a budgeted proof stage (the survivors number in
    // the tens of thousands; the budget keeps the example interactive while
    // still filling a representative atpg-proof bucket).
    let config = FlowConfig {
        proof: ProofStageConfig {
            backtrack_limit: 16,
            threads: 0,
            max_faults: Some(2_000),
        },
        ..FlowConfig::full_pipeline()
    };
    let flow = IdentificationFlow::new(config);
    let (report, classified) = flow.run_with_faults(&soc).expect("identification flow");
    // The report's Display includes the per-stage walkthrough of the §4
    // procedure (classified / still-undetected / wall-clock per stage).
    println!("{report}");
    println!();

    let detected = report.counts.detected;
    let untestable = report.baseline_structural + report.total_untestable();
    let raw = report.coverage_before_pruning(detected);
    let pruned = report.coverage_after_pruning(detected);

    println!("fault universe              : {}", report.total_faults);
    println!("detected by the SBST suite  : {detected}");
    println!("untestable (all classes)    : {untestable}");
    println!(
        "proven by ATPG (atpg-proof) : {}",
        report.count_for(UntestableSource::AtpgProof)
    );
    println!("coverage before pruning     : {:.1}%", raw * 100.0);
    println!("coverage after pruning      : {:.1}%", pruned * 100.0);
    println!(
        "coverage gain from pruning  : {:+.1} percentage points",
        (pruned - raw) * 100.0
    );
    println!();
    println!(
        "The paper reports a ~13 percentage-point rise on its industrial SoC\n\
         once the 29,657 on-line functionally untestable faults are removed\n\
         from the fault list. The atpg-proof bucket is this reproduction's\n\
         extension: faults no structural rule can attribute, *proven*\n\
         untestable by PODEM under the mission constraints."
    );
    assert!(
        report.count_for(UntestableSource::AtpgProof) > 0,
        "the proof stage should prove at least one fault on the industrial SoC"
    );

    // Cross-check the report against the classified list.
    assert_eq!(classified.counts(), report.counts);
}
